// Process-backend suite: heartbeat failure detector, the forked-worker
// backend standalone (wire routing, accounting, chaos kill, dead-PE
// discards), and the ParallelSim-level oracles — clean runs bitwise equal
// to the DES backend across worker counts, and a SIGKILLed worker mid-run
// recovering through the on-disk checkpoint to the fault-free trajectory.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "check/golden.hpp"
#include "check/invariants.hpp"
#include "fuzz/differential.hpp"
#include "rts/process_backend.hpp"
#include "rts/wire.hpp"

namespace scalemd {
namespace {

// ---------------------------------------------------------------------------
// HeartbeatDetector (pure state machine)
// ---------------------------------------------------------------------------

TEST(HeartbeatDetector, EscalatesAliveSuspectDead) {
  HeartbeatDetector det(2, /*suspect_after=*/2, /*dead_after=*/4);
  using State = HeartbeatDetector::State;
  EXPECT_EQ(det.state(0), State::kAlive);
  EXPECT_EQ(det.on_tick(0), State::kAlive);    // 1 miss
  EXPECT_EQ(det.on_tick(0), State::kSuspect);  // 2 misses
  EXPECT_EQ(det.on_tick(0), State::kSuspect);  // 3 misses
  EXPECT_EQ(det.on_tick(0), State::kDead);     // 4 misses
  // Peers are independent.
  EXPECT_EQ(det.state(1), State::kAlive);
  EXPECT_EQ(det.misses(1), 0);
}

TEST(HeartbeatDetector, PongRecoversSuspect) {
  HeartbeatDetector det(1, 1, 3);
  using State = HeartbeatDetector::State;
  EXPECT_EQ(det.on_tick(0), State::kSuspect);
  EXPECT_EQ(det.on_tick(0), State::kSuspect);
  det.on_pong(0);
  EXPECT_EQ(det.state(0), State::kAlive);
  EXPECT_EQ(det.misses(0), 0);
  // The clock restarts from zero after recovery.
  EXPECT_EQ(det.on_tick(0), State::kSuspect);
}

TEST(HeartbeatDetector, DeadIsTerminal) {
  HeartbeatDetector det(1, 1, 2);
  using State = HeartbeatDetector::State;
  det.on_tick(0);
  EXPECT_EQ(det.on_tick(0), State::kDead);
  det.on_pong(0);  // a late pong must not resurrect a killed worker
  EXPECT_EQ(det.state(0), State::kDead);
  EXPECT_EQ(det.on_tick(0), State::kDead);
}

// ---------------------------------------------------------------------------
// ProcessBackend standalone
// ---------------------------------------------------------------------------

// Per-PE hit counters shared with the forked workers: fork copies them, the
// children mutate their copies, and the flush/merge hooks bring the owned
// slices back to the parent.
std::vector<std::uint64_t> g_hits;

void install_hit_hooks(ProcessBackend& b) {
  b.set_state_hooks(
      [&b](int worker, int workers) {
        wire::Encoder e;
        for (int pe = worker; pe < b.num_pes(); pe += workers) {
          e.u64(g_hits[static_cast<std::size_t>(pe)]);
        }
        return e.take();
      },
      [&b](int worker, const std::vector<std::uint8_t>& blob) {
        wire::Decoder d(blob);
        for (int pe = worker; pe < b.num_pes(); pe += b.workers()) {
          std::uint64_t v = 0;
          ASSERT_TRUE(d.u64(v));
          g_hits[static_cast<std::size_t>(pe)] += v;
        }
        ASSERT_TRUE(d.done());
      });
}

TEST(ProcessBackend, LocalTasksExecuteAndAccountingConserves) {
  ProcessOptions po;
  po.workers = 2;
  ProcessBackend b(4, MachineModel::asci_red(), po);
  const EntryId e = b.entries().add("test.hit", WorkCategory::kOther);
  g_hits.assign(4, 0);
  install_hit_hooks(b);
  for (int pe = 0; pe < 4; ++pe) {
    TaskMsg msg;
    msg.entry = e;
    msg.fn = [](ExecContext& c) { ++g_hits[static_cast<std::size_t>(c.pe())]; };
    b.inject(pe, std::move(msg));
  }
  b.run();
  EXPECT_FALSE(b.last_run_failed());
  for (int pe = 0; pe < 4; ++pe) EXPECT_EQ(g_hits[static_cast<std::size_t>(pe)], 1u);
  EXPECT_EQ(b.tasks_executed(), 4u);
  const MessageAccounting& a = b.accounting();
  EXPECT_EQ(a.offered, 4u);
  EXPECT_EQ(a.executed, 4u);
  EXPECT_TRUE(a.conserved());
  EXPECT_TRUE(b.idle());
  EXPECT_TRUE(b.failed_pes().empty());
  EXPECT_EQ(b.frames_routed(), 0u);  // all sends were worker-local
}

TEST(ProcessBackend, CrossWorkerSendSerializesThroughDecoder) {
  ProcessOptions po;
  po.workers = 2;
  ProcessBackend b(2, MachineModel::asci_red(), po);
  const EntryId ping = b.entries().add("test.ping", WorkCategory::kComm);
  g_hits.assign(2, 0);
  install_hit_hooks(b);
  // The decoder rebuilds the closure from the wire payload at the receiving
  // worker; the payload carries how much to add.
  b.register_decoder(ping, [](const WirePayload& w) -> TaskFn {
    const std::int64_t amount = w.ints.empty() ? 0 : w.ints[0];
    return [amount](ExecContext& c) {
      g_hits[static_cast<std::size_t>(c.pe())] +=
          static_cast<std::uint64_t>(amount);
    };
  });
  TaskMsg boot;
  boot.entry = ping;
  boot.fn = [ping](ExecContext& c) {
    ++g_hits[static_cast<std::size_t>(c.pe())];
    TaskMsg m;
    m.entry = ping;
    m.bytes = 8;
    m.has_wire = true;
    m.wire.ints = {42};
    c.send(1, std::move(m));  // pe 1 lives in the other worker
  };
  b.inject(0, std::move(boot));
  b.run();
  EXPECT_FALSE(b.last_run_failed());
  EXPECT_EQ(g_hits[0], 1u);
  EXPECT_EQ(g_hits[1], 42u);
  EXPECT_EQ(b.tasks_executed(), 2u);
  EXPECT_EQ(b.frames_routed(), 1u);
  EXPECT_TRUE(b.accounting().conserved());
}

TEST(ProcessBackend, SigkilledWorkerFailsEpochAndMarksItsPes) {
  ProcessOptions po;
  po.workers = 2;
  po.heartbeat_ms = 50;
  po.kill_worker = 1;
  po.kill_after_frames = 0;  // die right out of the gate
  ProcessBackend b(4, MachineModel::asci_red(), po);
  const EntryId e = b.entries().add("test.hit", WorkCategory::kOther);
  g_hits.assign(4, 0);
  install_hit_hooks(b);
  auto inject_all = [&](int expect_discarded) {
    int discarded = 0;
    for (int pe = 0; pe < 4; ++pe) {
      if (b.pe_failed(pe)) ++discarded;
      TaskMsg msg;
      msg.entry = e;
      msg.fn = [](ExecContext& c) { ++g_hits[static_cast<std::size_t>(c.pe())]; };
      b.inject(pe, std::move(msg));
    }
    EXPECT_EQ(discarded, expect_discarded);
  };

  inject_all(0);
  b.run();
  EXPECT_TRUE(b.last_run_failed());
  EXPECT_EQ(b.failed_pes(), (std::vector<int>{1, 3}));
  // Nothing from the failed epoch merges: the epoch's messages are
  // discarded against the dead PEs and the identity still balances.
  EXPECT_EQ(b.tasks_executed(), 0u);
  EXPECT_TRUE(b.accounting().conserved());

  // The chaos trigger is one-shot: the next epoch (the "recovery replay")
  // runs clean on the surviving PEs, with dead-PE injects discarded.
  inject_all(2);
  b.run();
  EXPECT_FALSE(b.last_run_failed());
  EXPECT_EQ(g_hits[0], 1u);
  EXPECT_EQ(g_hits[2], 1u);
  EXPECT_EQ(g_hits[1], 0u);
  EXPECT_EQ(g_hits[3], 0u);
  EXPECT_EQ(b.tasks_executed(), 2u);
  EXPECT_TRUE(b.accounting().conserved());
}

TEST(ProcessBackend, HeartbeatDetectorKillsHungWorker) {
  ProcessOptions po;
  po.workers = 2;
  po.heartbeat_ms = 40;
  po.suspect_after = 1;
  po.dead_after = 3;
  ProcessBackend b(2, MachineModel::asci_red(), po);
  const EntryId e = b.entries().add("test.hang", WorkCategory::kOther);
  TaskMsg hang;
  hang.entry = e;
  hang.fn = [](ExecContext&) {
    // A worker wedged inside a task never answers pings; the supervisor's
    // failure detector must escalate it to dead and SIGKILL it.
    for (;;) pause();
  };
  b.inject(1, std::move(hang));
  TaskMsg ok;
  ok.entry = e;
  ok.fn = [](ExecContext&) {};
  b.inject(0, std::move(ok));
  b.run();
  EXPECT_TRUE(b.last_run_failed());
  EXPECT_TRUE(b.pe_failed(1));
  EXPECT_FALSE(b.pe_failed(0));
  EXPECT_TRUE(b.accounting().conserved());
}

// ---------------------------------------------------------------------------
// ParallelSim differential: process backend vs DES, bitwise
// ---------------------------------------------------------------------------

Trajectory run_parallel(const char* spec_name, const ParallelGoldenOptions& p,
                        InvariantChecker* checker = nullptr) {
  const GoldenSpec* spec = find_golden_spec(spec_name);
  EXPECT_NE(spec, nullptr);
  return record_parallel_trajectory(*spec, p, checker);
}

void expect_bitwise(const Trajectory& got, const Trajectory& ref,
                    const std::string& what) {
  CompareOptions bitwise;
  bitwise.mode = CompareMode::kUlp;
  bitwise.max_ulps = 0;
  const CompareResult r = compare_trajectories(got, ref, bitwise);
  EXPECT_TRUE(r.match) << what << ": " << r.message;
  EXPECT_EQ(r.worst, 0.0) << what << ": worst ulp deviation at " << r.where;
}

std::string temp_checkpoint_path(const char* tag) {
  return testing::TempDir() + "scalemd_ckpt_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

struct ProcDiffCase {
  int pes;
  int workers;
};

std::string proc_case_name(const testing::TestParamInfo<ProcDiffCase>& info) {
  return "pes" + std::to_string(info.param.pes) + "_w" +
         std::to_string(info.param.workers);
}

class ProcessDiffTest : public testing::TestWithParam<ProcDiffCase> {};

TEST_P(ProcessDiffTest, ProcessMatchesDesBitwise) {
  const ProcDiffCase& c = GetParam();
  ParallelGoldenOptions des;
  des.num_pes = c.pes;
  des.backend = BackendKind::kSimulated;
  const Trajectory ref = run_parallel("waterbox", des);

  ParallelGoldenOptions proc;
  proc.num_pes = c.pes;
  proc.backend = BackendKind::kProcess;
  proc.process_workers = c.workers;
  const Trajectory got = run_parallel("waterbox", proc);
  expect_bitwise(got, ref, "process vs DES");
}

constexpr ProcDiffCase kProcMatrix[] = {
    {2, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 3},
};

INSTANTIATE_TEST_SUITE_P(PesWorkersMatrix, ProcessDiffTest,
                         testing::ValuesIn(kProcMatrix), proc_case_name);

// Load balancing mid-trajectory (object migration, changed proxy sets) must
// not perturb the process backend either, and the physics invariants stay
// clean throughout.
TEST(ProcessDiffTest, WithLoadBalanceMatchesDesBitwise) {
  ParallelGoldenOptions des;
  des.num_pes = 4;
  des.backend = BackendKind::kSimulated;
  des.lb = LbStrategyKind::kGreedyRefine;
  const Trajectory ref = run_parallel("waterbox", des);

  InvariantOptions iopts;
  iopts.check_energy = false;  // sparse cycle observation of a short run
  ViolationLog log;
  InvariantChecker checker(iopts, &log);
  ParallelGoldenOptions proc;
  proc.num_pes = 4;
  proc.backend = BackendKind::kProcess;
  proc.process_workers = 2;
  proc.lb = LbStrategyKind::kGreedyRefine;
  const Trajectory got = run_parallel("waterbox", proc, &checker);
  EXPECT_TRUE(checker.ok()) << log.render();
  expect_bitwise(got, ref, "process+LB vs DES");
}

// The chain preset adds bonded terms, exclusions and 1-4 pairs (different
// compute kinds crossing the worker boundary).
TEST(ProcessDiffTest, ChainMatchesDesBitwise) {
  ParallelGoldenOptions des;
  des.num_pes = 4;
  des.backend = BackendKind::kSimulated;
  const Trajectory ref = run_parallel("chain", des);
  ParallelGoldenOptions proc;
  proc.num_pes = 4;
  proc.backend = BackendKind::kProcess;
  proc.process_workers = 2;
  const Trajectory got = run_parallel("chain", proc);
  expect_bitwise(got, ref, "chain process vs DES");
}

// ---------------------------------------------------------------------------
// Real crash recovery: SIGKILL a worker mid-run, recover from the on-disk
// checkpoint, and land on the fault-free trajectory bitwise.
// ---------------------------------------------------------------------------

TEST(ProcessChaos, KillRecoversToFaultFreeTrajectoryBitwise) {
  ParallelGoldenOptions clean;
  clean.num_pes = 4;
  clean.backend = BackendKind::kSimulated;
  const Trajectory ref = run_parallel("waterbox", clean);

  ParallelGoldenOptions chaos;
  chaos.num_pes = 4;
  chaos.backend = BackendKind::kProcess;
  chaos.process_workers = 2;
  chaos.checkpoint_every = 1;
  chaos.checkpoint_path = temp_checkpoint_path("kill");
  chaos.kill_worker = 1;
  chaos.kill_after_frames = 10;  // mid-cycle, after real traffic has flowed
  const Trajectory got = run_parallel("waterbox", chaos);
  expect_bitwise(got, ref, "killed+recovered process vs fault-free DES");
  std::remove(chaos.checkpoint_path.c_str());
}

// The kill must actually fire and the runtime must actually restart — guard
// against the chaos trigger silently never tripping (which would make the
// recovery tests vacuous).
TEST(ProcessChaos, KillTriggersRestartAndEvacuation) {
  const GoldenSpec* spec = find_golden_spec("waterbox");
  ASSERT_NE(spec, nullptr);
  Molecule mol = spec->make();
  ParallelOptions opts;
  opts.num_pes = 4;
  opts.backend = BackendKind::kProcess;
  opts.process.workers = 2;
  opts.process.kill_worker = 1;
  opts.process.kill_after_frames = 10;
  opts.checkpoint_every = 1;
  opts.checkpoint_path = temp_checkpoint_path("restart");
  opts.numeric = true;
  opts.dt_fs = spec->engine.dt_fs;
  Workload wl(mol, opts.machine, spec->engine.nonbonded);
  ParallelSim sim(wl, opts);
  sim.run_cycle(spec->record_every);
  EXPECT_GE(sim.restarts(), 1);
  EXPECT_GE(sim.checkpoints_taken(), 1);
  EXPECT_TRUE(sim.last_cycle_complete());
  EXPECT_EQ(sim.backend().failed_pes(), (std::vector<int>{1, 3}));
  // The dead worker's patches were evacuated onto survivors.
  for (int home : sim.patch_home()) {
    EXPECT_TRUE(home == 0 || home == 2) << "patch still homed on dead PE " << home;
  }
  // A later cycle on the shrunken machine still completes.
  sim.run_cycle(spec->record_every);
  EXPECT_TRUE(sim.last_cycle_complete());
  std::remove(opts.checkpoint_path.c_str());
}

TEST(ProcessChaos, KillRecoveryIsDeterministicAcrossRuns) {
  ParallelGoldenOptions chaos;
  chaos.num_pes = 4;
  chaos.backend = BackendKind::kProcess;
  chaos.process_workers = 2;
  chaos.checkpoint_every = 1;
  chaos.kill_worker = 1;
  chaos.kill_after_frames = 10;
  chaos.checkpoint_path = temp_checkpoint_path("det_a");
  const Trajectory a = run_parallel("waterbox", chaos);
  std::remove(chaos.checkpoint_path.c_str());
  chaos.checkpoint_path = temp_checkpoint_path("det_b");
  const Trajectory b = run_parallel("waterbox", chaos);
  std::remove(chaos.checkpoint_path.c_str());
  expect_bitwise(b, a, "chaos run B vs chaos run A");
}

// Fault-free runs with checkpointing armed exercise the disk round-trip
// (every cycle snapshots through the wire layer) without ever restoring —
// and must not disturb the trajectory.
TEST(ProcessChaos, CheckpointingAloneIsInvisible) {
  ParallelGoldenOptions plain;
  plain.num_pes = 4;
  plain.backend = BackendKind::kProcess;
  plain.process_workers = 2;
  const Trajectory ref = run_parallel("waterbox", plain);

  ParallelGoldenOptions ckpt = plain;
  ckpt.checkpoint_every = 1;
  ckpt.checkpoint_path = temp_checkpoint_path("plain");
  const Trajectory got = run_parallel("waterbox", ckpt);
  std::remove(ckpt.checkpoint_path.c_str());
  expect_bitwise(got, ref, "checkpointing process vs plain process");
}

// The fuzzer's process leg (ScenarioSpec::process_workers) runs here rather
// than in the unit suite so all fork-heavy coverage sits under the `process`
// ctest label. A clean spec crossing DES, threads and forked workers must
// score ok on every oracle.
TEST(ProcessFuzzLeg, CleanSpecWithProcessWorkersPasses) {
  ScenarioSpec spec;
  spec.seed = 42;
  spec.box = 12.0;
  spec.num_pes = 4;
  spec.threads = 2;
  spec.process_workers = 2;
  spec.cycles = 2;
  spec.steps = 1;
  ASSERT_EQ(validate_scenario(spec), "");
  const FuzzVerdict v = evaluate_scenario(spec);
  EXPECT_TRUE(v.ok) << v.oracle << "\n" << v.detail;
}

}  // namespace
}  // namespace scalemd
