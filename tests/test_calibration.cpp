// Pins the machine-model calibration to the paper's published anchors (see
// EXPERIMENTS.md). If a change to the generators, kernels, or machine
// constants moves these, the scaling tables will silently drift from the
// published shape — these tests make that drift loud.

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "gen/presets.hpp"

namespace scalemd {
namespace {

class CalibrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mol_ = new Molecule(apoa1_like());
    wl_ = new Workload(*mol_, MachineModel::asci_red());
  }
  static void TearDownTestSuite() {
    delete wl_;
    delete mol_;
    wl_ = nullptr;
    mol_ = nullptr;
  }
  static Molecule* mol_;
  static Workload* wl_;
};

Molecule* CalibrationFixture::mol_ = nullptr;
Workload* CalibrationFixture::wl_ = nullptr;

TEST_F(CalibrationFixture, SinglePeStepNearPaper) {
  // Paper Table 2: 57.1 s/step on one ASCI-Red processor.
  ParallelOptions opts;
  opts.num_pes = 1;
  ParallelSim sim(*wl_, opts);
  const double t = sim.run_benchmark(2, 3);
  EXPECT_NEAR(t, 57.1, 0.05 * 57.1);
}

TEST_F(CalibrationFixture, IdealCategorySplitMatchesTable1) {
  // Paper Table 1 ideal row: 52.44 / 3.16 / 1.44 seconds.
  ParallelOptions opts;
  opts.num_pes = 1;
  const ParallelSim sim(*wl_, opts);
  EXPECT_NEAR(sim.ideal_nonbonded_seconds(), 52.44, 0.05 * 52.44);
  EXPECT_NEAR(sim.ideal_bonded_seconds(), 3.16, 0.10 * 3.16);
  EXPECT_NEAR(sim.ideal_integration_seconds(), 1.44, 0.05 * 1.44);
}

TEST_F(CalibrationFixture, GflopsScaleNearPaper) {
  // Paper: 0.0480 GFLOPS on one ASCI-Red PE, 0.112 on one Origin 2000 PE
  // (conservative instruction-counter method).
  const double flops = estimate_flops_per_step(wl_->work.total());
  EXPECT_NEAR(flops / 57.1 * 1e-9, 0.048, 0.010);
  EXPECT_NEAR(flops / 24.4 * 1e-9, 0.112, 0.020);
}

TEST_F(CalibrationFixture, OriginSinglePeNearPaper) {
  // Paper Table 6: 24.4 s/step on one Origin 2000 processor.
  ParallelOptions opts;
  opts.num_pes = 1;
  opts.machine = MachineModel::origin2000();
  ParallelSim sim(*wl_, opts);
  const double t = sim.run_benchmark(2, 3);
  EXPECT_NEAR(t, 24.4, 0.05 * 24.4);
}

TEST_F(CalibrationFixture, SpeedupShapeAt1024) {
  // Paper Table 2: speedup 695 at 1024 PEs (efficiency 68%). Allow a wide
  // band — the pinned claim is "hundreds, sublinear, not thousands".
  ParallelOptions opts1;
  opts1.num_pes = 1;
  ParallelSim sim1(*wl_, opts1);
  const double t1 = sim1.run_benchmark(2, 3);

  ParallelOptions opts;
  opts.num_pes = 1024;
  ParallelSim sim(*wl_, opts);
  const double t = sim.run_benchmark(3, 5);
  const double speedup = t1 / t;
  EXPECT_GT(speedup, 550.0);
  EXPECT_LT(speedup, 950.0);
}

TEST(CalibrationTest, BrSinglePeNearPaper) {
  // Paper Table 4: 1.47 s/step for bR on one ASCI-Red processor.
  const Molecule mol = br_like();
  const Workload wl(mol, MachineModel::asci_red());
  ParallelOptions opts;
  opts.num_pes = 1;
  ParallelSim sim(wl, opts);
  const double t = sim.run_benchmark(2, 3);
  EXPECT_NEAR(t, 1.47, 0.12 * 1.47);
}

TEST(CalibrationTest, MachineProfilesOrdering) {
  // Origin 2000 is the fastest per processor, ASCI-Red the slowest; the T3E
  // has the lowest-latency network.
  const MachineModel red = MachineModel::asci_red();
  const MachineModel t3e = MachineModel::t3e900();
  const MachineModel o2k = MachineModel::origin2000();
  EXPECT_LT(o2k.pair_cost, t3e.pair_cost);
  EXPECT_LT(t3e.pair_cost, red.pair_cost);
  EXPECT_LT(t3e.latency, red.latency);
  EXPECT_GT(red.send_overhead, 0.0);
}

}  // namespace
}  // namespace scalemd
