#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "ewald/ewald.hpp"
#include "ewald/fft.hpp"
#include "ewald/pme.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace scalemd {
namespace {

// ---------------------------------------------------------------------------
// FFT
// ---------------------------------------------------------------------------

TEST(FftTest, MatchesDirectDft) {
  Rng rng(3);
  std::vector<std::complex<double>> data(16);
  for (auto& d : data) d = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto reference = data;
  fft(data, false);
  for (std::size_t k = 0; k < reference.size(); ++k) {
    std::complex<double> sum{0, 0};
    for (std::size_t n = 0; n < reference.size(); ++n) {
      const double phase = -2.0 * M_PI * static_cast<double>(k * n) / 16.0;
      sum += reference[n] * std::complex<double>(std::cos(phase), std::sin(phase));
    }
    EXPECT_NEAR(std::abs(data[k] - sum), 0.0, 1e-10) << k;
  }
}

TEST(FftTest, RoundTripIdentity) {
  Rng rng(5);
  std::vector<std::complex<double>> data(64);
  for (auto& d : data) d = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto original = data;
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i] / 64.0 - original[i]), 0.0, 1e-12);
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(7);
  std::vector<std::complex<double>> data(32);
  double time_energy = 0.0;
  for (auto& d : data) {
    d = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    time_energy += std::norm(d);
  }
  fft(data, false);
  double freq_energy = 0.0;
  for (const auto& d : data) freq_energy += std::norm(d);
  EXPECT_NEAR(freq_energy / 32.0, time_energy, 1e-10);
}

TEST(FftTest, ThreeDRoundTrip) {
  Rng rng(9);
  std::vector<std::complex<double>> grid(8 * 4 * 16);
  for (auto& g : grid) g = {rng.uniform(-1, 1), 0.0};
  const auto original = grid;
  fft3d(grid, 8, 4, 16, false);
  fft3d(grid, 8, 4, 16, true);
  const double n = 8.0 * 4.0 * 16.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(std::abs(grid[i] / n - original[i]), 0.0, 1e-11);
  }
}

// ---------------------------------------------------------------------------
// B-splines
// ---------------------------------------------------------------------------

TEST(BsplineTest, PartitionOfUnity) {
  for (int order : {2, 3, 4, 6}) {
    std::vector<double> w(static_cast<std::size_t>(order));
    std::vector<double> dw(static_cast<std::size_t>(order));
    for (double u : {0.0, 0.1, 0.25, 0.5, 0.77, 0.999}) {
      bspline_weights(u, order, w, dw);
      double sum = 0.0, dsum = 0.0;
      for (int j = 0; j < order; ++j) {
        EXPECT_GE(w[static_cast<std::size_t>(j)], -1e-12);
        sum += w[static_cast<std::size_t>(j)];
        dsum += dw[static_cast<std::size_t>(j)];
      }
      EXPECT_NEAR(sum, 1.0, 1e-12) << "order " << order << " u " << u;
      EXPECT_NEAR(dsum, 0.0, 1e-12);
    }
  }
}

TEST(BsplineTest, DerivativeMatchesFiniteDifference) {
  const int order = 4;
  std::vector<double> w1(4), w2(4), dw(4), dtmp(4);
  const double h = 1e-6;
  for (double u : {0.1, 0.4, 0.9}) {
    bspline_weights(u, order, w1, dw);
    bspline_weights(u + h, order, w2, dtmp);
    for (int j = 0; j < order; ++j) {
      const double fd = (w2[static_cast<std::size_t>(j)] -
                         w1[static_cast<std::size_t>(j)]) / h;
      EXPECT_NEAR(dw[static_cast<std::size_t>(j)], fd, 1e-5) << u << " " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Ewald summation
// ---------------------------------------------------------------------------

/// NaCl rock-salt test lattice: 2x2x2 conventional cells, 64 ions.
struct NaclLattice {
  NaclLattice() {
    const double a = 5.64;  // lattice constant, A
    box = {2 * a, 2 * a, 2 * a};
    for (int z = 0; z < 4; ++z) {
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          pos.push_back({x * a / 2, y * a / 2, z * a / 2});
          q.push_back((x + y + z) % 2 == 0 ? 1.0 : -1.0);
        }
      }
    }
    nearest = a / 2;
  }
  Vec3 box;
  std::vector<Vec3> pos;
  std::vector<double> q;
  double nearest;
};

TEST(EwaldTest, MadelungConstantOfRockSalt) {
  const NaclLattice lat;
  EwaldOptions opts;
  opts.alpha = 0.55;
  opts.r_cut = 5.6;
  opts.k_max = 16;
  const EwaldSum ewald(lat.box, opts);
  std::vector<Vec3> f(lat.pos.size());
  const ElecResult r = ewald.energy_forces(lat.pos, lat.q, f);
  // E per ion *pair* = -M * C / r_nearest with Madelung constant
  // M = 1.747565 (64 ions = 32 pairs).
  const double per_pair = r.total() / (0.5 * static_cast<double>(lat.pos.size()));
  const double madelung = -per_pair * lat.nearest / units::kCoulomb;
  EXPECT_NEAR(madelung, 1.747565, 2e-4);
  // Perfect lattice: forces vanish by symmetry.
  for (const Vec3& fi : f) EXPECT_LT(norm(fi), 1e-6);
}

TEST(EwaldTest, AlphaIndependence) {
  Rng rng(11);
  const Vec3 box{16, 16, 16};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 20; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.7 : -0.7);
  }
  auto total = [&](double alpha, double rcut, int kmax) {
    EwaldOptions o;
    o.alpha = alpha;
    o.r_cut = rcut;
    o.k_max = kmax;
    std::vector<Vec3> f(pos.size());
    return EwaldSum(box, o).energy_forces(pos, q, f).total();
  };
  const double e1 = total(0.40, 7.9, 12);
  const double e2 = total(0.55, 7.9, 16);
  EXPECT_NEAR(e1, e2, 1e-4 * std::fabs(e1) + 1e-4);
}

TEST(EwaldTest, ForcesMatchFiniteDifferenceOfTotal) {
  Rng rng(13);
  const Vec3 box{12, 12, 12};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 8; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.5 : -0.5);
  }
  EwaldOptions opts;
  opts.alpha = 0.5;
  opts.r_cut = 5.9;
  opts.k_max = 12;
  const EwaldSum ewald(box, opts);

  std::vector<Vec3> f(pos.size());
  ewald.energy_forces(pos, q, f);
  const double h = 1e-5;
  for (int i = 0; i < 3; ++i) {  // spot-check three atoms
    for (int d = 0; d < 3; ++d) {
      auto moved = pos;
      double* c = d == 0 ? &moved[static_cast<std::size_t>(i)].x
                  : d == 1 ? &moved[static_cast<std::size_t>(i)].y
                           : &moved[static_cast<std::size_t>(i)].z;
      std::vector<Vec3> tmp(pos.size());
      *c += h;
      const double ep = ewald.energy_forces(moved, q, tmp).total();
      *c -= 2 * h;
      std::fill(tmp.begin(), tmp.end(), Vec3{});
      const double em = ewald.energy_forces(moved, q, tmp).total();
      const double fd = -(ep - em) / (2 * h);
      const double fa = d == 0 ? f[static_cast<std::size_t>(i)].x
                        : d == 1 ? f[static_cast<std::size_t>(i)].y
                                 : f[static_cast<std::size_t>(i)].z;
      EXPECT_NEAR(fa, fd, 1e-4 * std::max(1.0, std::fabs(fd)));
    }
  }
}

TEST(EwaldTest, NewtonsThirdLawOverall) {
  Rng rng(17);
  const Vec3 box{14, 14, 14};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 16; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.4 : -0.4);
  }
  EwaldOptions opts;
  const EwaldSum ewald(box, opts);
  std::vector<Vec3> f(pos.size());
  ewald.energy_forces(pos, q, f);
  Vec3 total;
  for (const Vec3& fi : f) total += fi;
  EXPECT_LT(norm(total), 1e-8);
}

// ---------------------------------------------------------------------------
// PME vs Ewald
// ---------------------------------------------------------------------------

TEST(PmeTest, ReciprocalEnergyMatchesEwald) {
  Rng rng(19);
  const Vec3 box{16, 16, 16};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 24; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.6 : -0.6);
  }
  EwaldOptions eo;
  eo.alpha = 0.4;
  eo.k_max = 14;
  const EwaldSum ewald(box, eo);
  std::vector<Vec3> fe(pos.size());
  const double e_ref = ewald.reciprocal(pos, q, fe);

  PmeOptions po;
  po.alpha = 0.4;
  po.grid_x = po.grid_y = po.grid_z = 32;
  po.order = 4;
  const Pme pme(box, po);
  std::vector<Vec3> fp(pos.size());
  const double e_pme = pme.reciprocal(pos, q, fp);

  EXPECT_NEAR(e_pme, e_ref, 2e-3 * std::fabs(e_ref) + 1e-3);
  double max_df = 0.0, max_f = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    max_df = std::max(max_df, norm(fp[i] - fe[i]));
    max_f = std::max(max_f, norm(fe[i]));
  }
  EXPECT_LT(max_df, 0.02 * max_f + 1e-3);
}

TEST(PmeTest, FinerGridConverges) {
  Rng rng(23);
  const Vec3 box{12, 12, 12};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 10; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.8 : -0.8);
  }
  EwaldOptions eo;
  eo.alpha = 0.45;
  eo.k_max = 14;
  std::vector<Vec3> fe(pos.size());
  const double e_ref = EwaldSum(box, eo).reciprocal(pos, q, fe);

  auto pme_error = [&](int grid) {
    PmeOptions po;
    po.alpha = 0.45;
    po.grid_x = po.grid_y = po.grid_z = grid;
    std::vector<Vec3> fp(pos.size());
    return std::fabs(Pme(box, po).reciprocal(pos, q, fp) - e_ref);
  };
  const double coarse = pme_error(16);
  const double fine = pme_error(64);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 2e-4 * std::fabs(e_ref) + 1e-4);
}

TEST(PmeTest, MadelungViaPmePipeline) {
  // Full pipeline: PME reciprocal + Ewald real space + self energy.
  const NaclLattice lat;
  EwaldOptions eo;
  eo.alpha = 0.45;
  eo.r_cut = 5.6;
  const EwaldSum ewald(lat.box, eo);
  PmeOptions po;
  po.alpha = 0.45;
  po.grid_x = po.grid_y = po.grid_z = 32;
  const Pme pme(lat.box, po);

  std::vector<Vec3> f(lat.pos.size());
  const double total = ewald.real_space(lat.pos, lat.q, f) +
                       pme.reciprocal(lat.pos, lat.q, f) +
                       ewald.self_energy(lat.q);
  const double per_pair = total / (0.5 * static_cast<double>(lat.pos.size()));
  const double madelung = -per_pair * lat.nearest / units::kCoulomb;
  EXPECT_NEAR(madelung, 1.747565, 1e-3);
}

}  // namespace
}  // namespace scalemd
