#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "ewald/ewald.hpp"
#include "ewald/fft.hpp"
#include "ewald/full_elec.hpp"
#include "ewald/pme.hpp"
#include "ewald/pme_slab.hpp"
#include "gen/test_systems.hpp"
#include "seq/engine.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace scalemd {
namespace {

// ---------------------------------------------------------------------------
// FFT
// ---------------------------------------------------------------------------

TEST(FftTest, MatchesDirectDft) {
  Rng rng(3);
  std::vector<std::complex<double>> data(16);
  for (auto& d : data) d = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto reference = data;
  fft(data, false);
  for (std::size_t k = 0; k < reference.size(); ++k) {
    std::complex<double> sum{0, 0};
    for (std::size_t n = 0; n < reference.size(); ++n) {
      const double phase = -2.0 * M_PI * static_cast<double>(k * n) / 16.0;
      sum += reference[n] * std::complex<double>(std::cos(phase), std::sin(phase));
    }
    EXPECT_NEAR(std::abs(data[k] - sum), 0.0, 1e-10) << k;
  }
}

TEST(FftTest, RoundTripIdentity) {
  Rng rng(5);
  std::vector<std::complex<double>> data(64);
  for (auto& d : data) d = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto original = data;
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i] / 64.0 - original[i]), 0.0, 1e-12);
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(7);
  std::vector<std::complex<double>> data(32);
  double time_energy = 0.0;
  for (auto& d : data) {
    d = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    time_energy += std::norm(d);
  }
  fft(data, false);
  double freq_energy = 0.0;
  for (const auto& d : data) freq_energy += std::norm(d);
  EXPECT_NEAR(freq_energy / 32.0, time_energy, 1e-10);
}

TEST(FftTest, ThreeDRoundTrip) {
  Rng rng(9);
  std::vector<std::complex<double>> grid(8 * 4 * 16);
  for (auto& g : grid) g = {rng.uniform(-1, 1), 0.0};
  const auto original = grid;
  fft3d(grid, 8, 4, 16, false);
  fft3d(grid, 8, 4, 16, true);
  const double n = 8.0 * 4.0 * 16.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(std::abs(grid[i] / n - original[i]), 0.0, 1e-11);
  }
}

// ---------------------------------------------------------------------------
// B-splines
// ---------------------------------------------------------------------------

TEST(BsplineTest, PartitionOfUnity) {
  for (int order : {2, 3, 4, 6}) {
    std::vector<double> w(static_cast<std::size_t>(order));
    std::vector<double> dw(static_cast<std::size_t>(order));
    for (double u : {0.0, 0.1, 0.25, 0.5, 0.77, 0.999}) {
      bspline_weights(u, order, w, dw);
      double sum = 0.0, dsum = 0.0;
      for (int j = 0; j < order; ++j) {
        EXPECT_GE(w[static_cast<std::size_t>(j)], -1e-12);
        sum += w[static_cast<std::size_t>(j)];
        dsum += dw[static_cast<std::size_t>(j)];
      }
      EXPECT_NEAR(sum, 1.0, 1e-12) << "order " << order << " u " << u;
      EXPECT_NEAR(dsum, 0.0, 1e-12);
    }
  }
}

TEST(BsplineTest, DerivativeMatchesFiniteDifference) {
  const int order = 4;
  std::vector<double> w1(4), w2(4), dw(4), dtmp(4);
  const double h = 1e-6;
  for (double u : {0.1, 0.4, 0.9}) {
    bspline_weights(u, order, w1, dw);
    bspline_weights(u + h, order, w2, dtmp);
    for (int j = 0; j < order; ++j) {
      const double fd = (w2[static_cast<std::size_t>(j)] -
                         w1[static_cast<std::size_t>(j)]) / h;
      EXPECT_NEAR(dw[static_cast<std::size_t>(j)], fd, 1e-5) << u << " " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Ewald summation
// ---------------------------------------------------------------------------

/// NaCl rock-salt test lattice: 2x2x2 conventional cells, 64 ions.
struct NaclLattice {
  NaclLattice() {
    const double a = 5.64;  // lattice constant, A
    box = {2 * a, 2 * a, 2 * a};
    for (int z = 0; z < 4; ++z) {
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          pos.push_back({x * a / 2, y * a / 2, z * a / 2});
          q.push_back((x + y + z) % 2 == 0 ? 1.0 : -1.0);
        }
      }
    }
    nearest = a / 2;
  }
  Vec3 box;
  std::vector<Vec3> pos;
  std::vector<double> q;
  double nearest;
};

TEST(EwaldTest, MadelungConstantOfRockSalt) {
  const NaclLattice lat;
  EwaldOptions opts;
  opts.alpha = 0.55;
  opts.r_cut = 5.6;
  opts.k_max = 16;
  const EwaldSum ewald(lat.box, opts);
  std::vector<Vec3> f(lat.pos.size());
  const ElecResult r = ewald.energy_forces(lat.pos, lat.q, f);
  // E per ion *pair* = -M * C / r_nearest with Madelung constant
  // M = 1.747565 (64 ions = 32 pairs).
  const double per_pair = r.total() / (0.5 * static_cast<double>(lat.pos.size()));
  const double madelung = -per_pair * lat.nearest / units::kCoulomb;
  EXPECT_NEAR(madelung, 1.747565, 2e-4);
  // Perfect lattice: forces vanish by symmetry.
  for (const Vec3& fi : f) EXPECT_LT(norm(fi), 1e-6);
}

TEST(EwaldTest, AlphaIndependence) {
  Rng rng(11);
  const Vec3 box{16, 16, 16};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 20; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.7 : -0.7);
  }
  auto total = [&](double alpha, double rcut, int kmax) {
    EwaldOptions o;
    o.alpha = alpha;
    o.r_cut = rcut;
    o.k_max = kmax;
    std::vector<Vec3> f(pos.size());
    return EwaldSum(box, o).energy_forces(pos, q, f).total();
  };
  const double e1 = total(0.40, 7.9, 12);
  const double e2 = total(0.55, 7.9, 16);
  EXPECT_NEAR(e1, e2, 1e-4 * std::fabs(e1) + 1e-4);
}

TEST(EwaldTest, ForcesMatchFiniteDifferenceOfTotal) {
  Rng rng(13);
  const Vec3 box{12, 12, 12};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 8; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.5 : -0.5);
  }
  EwaldOptions opts;
  opts.alpha = 0.5;
  opts.r_cut = 5.9;
  opts.k_max = 12;
  const EwaldSum ewald(box, opts);

  std::vector<Vec3> f(pos.size());
  ewald.energy_forces(pos, q, f);
  const double h = 1e-5;
  for (int i = 0; i < 3; ++i) {  // spot-check three atoms
    for (int d = 0; d < 3; ++d) {
      auto moved = pos;
      double* c = d == 0 ? &moved[static_cast<std::size_t>(i)].x
                  : d == 1 ? &moved[static_cast<std::size_t>(i)].y
                           : &moved[static_cast<std::size_t>(i)].z;
      std::vector<Vec3> tmp(pos.size());
      *c += h;
      const double ep = ewald.energy_forces(moved, q, tmp).total();
      *c -= 2 * h;
      std::fill(tmp.begin(), tmp.end(), Vec3{});
      const double em = ewald.energy_forces(moved, q, tmp).total();
      const double fd = -(ep - em) / (2 * h);
      const double fa = d == 0 ? f[static_cast<std::size_t>(i)].x
                        : d == 1 ? f[static_cast<std::size_t>(i)].y
                                 : f[static_cast<std::size_t>(i)].z;
      EXPECT_NEAR(fa, fd, 1e-4 * std::max(1.0, std::fabs(fd)));
    }
  }
}

TEST(EwaldTest, NewtonsThirdLawOverall) {
  Rng rng(17);
  const Vec3 box{14, 14, 14};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 16; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.4 : -0.4);
  }
  EwaldOptions opts;
  const EwaldSum ewald(box, opts);
  std::vector<Vec3> f(pos.size());
  ewald.energy_forces(pos, q, f);
  Vec3 total;
  for (const Vec3& fi : f) total += fi;
  EXPECT_LT(norm(total), 1e-8);
}

// ---------------------------------------------------------------------------
// PME vs Ewald
// ---------------------------------------------------------------------------

TEST(PmeTest, ReciprocalEnergyMatchesEwald) {
  Rng rng(19);
  const Vec3 box{16, 16, 16};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 24; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.6 : -0.6);
  }
  EwaldOptions eo;
  eo.alpha = 0.4;
  eo.k_max = 14;
  const EwaldSum ewald(box, eo);
  std::vector<Vec3> fe(pos.size());
  const double e_ref = ewald.reciprocal(pos, q, fe);

  PmeOptions po;
  po.alpha = 0.4;
  po.grid_x = po.grid_y = po.grid_z = 32;
  po.order = 4;
  const Pme pme(box, po);
  std::vector<Vec3> fp(pos.size());
  const double e_pme = pme.reciprocal(pos, q, fp);

  EXPECT_NEAR(e_pme, e_ref, 2e-3 * std::fabs(e_ref) + 1e-3);
  double max_df = 0.0, max_f = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    max_df = std::max(max_df, norm(fp[i] - fe[i]));
    max_f = std::max(max_f, norm(fe[i]));
  }
  EXPECT_LT(max_df, 0.02 * max_f + 1e-3);
}

TEST(PmeTest, FinerGridConverges) {
  Rng rng(23);
  const Vec3 box{12, 12, 12};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 10; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 0.8 : -0.8);
  }
  EwaldOptions eo;
  eo.alpha = 0.45;
  eo.k_max = 14;
  std::vector<Vec3> fe(pos.size());
  const double e_ref = EwaldSum(box, eo).reciprocal(pos, q, fe);

  auto pme_error = [&](int grid) {
    PmeOptions po;
    po.alpha = 0.45;
    po.grid_x = po.grid_y = po.grid_z = grid;
    std::vector<Vec3> fp(pos.size());
    return std::fabs(Pme(box, po).reciprocal(pos, q, fp) - e_ref);
  };
  const double coarse = pme_error(16);
  const double fine = pme_error(64);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 2e-4 * std::fabs(e_ref) + 1e-4);
}

TEST(PmeTest, MadelungViaPmePipeline) {
  // Full pipeline: PME reciprocal + Ewald real space + self energy.
  const NaclLattice lat;
  EwaldOptions eo;
  eo.alpha = 0.45;
  eo.r_cut = 5.6;
  const EwaldSum ewald(lat.box, eo);
  PmeOptions po;
  po.alpha = 0.45;
  po.grid_x = po.grid_y = po.grid_z = 32;
  const Pme pme(lat.box, po);

  std::vector<Vec3> f(lat.pos.size());
  const double total = ewald.real_space(lat.pos, lat.q, f) +
                       pme.reciprocal(lat.pos, lat.q, f) +
                       ewald.self_energy(lat.q);
  const double per_pair = total / (0.5 * static_cast<double>(lat.pos.size()));
  const double madelung = -per_pair * lat.nearest / units::kCoulomb;
  EXPECT_NEAR(madelung, 1.747565, 1e-3);
}

TEST(PmeTest, RandomNeutralSetsMatchEwaldDirectSum) {
  // Several independent random neutral charge sets (non-unit, non-symmetric
  // magnitudes): the PME reciprocal must track the direct structure-factor
  // sum in both energy and per-atom forces.
  for (std::uint64_t seed : {29u, 31u, 37u, 41u}) {
    Rng rng(seed);
    const Vec3 box{14, 18, 12};
    const int n = 6 + static_cast<int>(seed % 20);
    std::vector<Vec3> pos;
    std::vector<double> q;
    double qsum = 0.0;
    for (int i = 0; i < n; ++i) {
      pos.push_back(rng.point_in_box(box));
      q.push_back(rng.uniform(-1.0, 1.0));
      qsum += q.back();
    }
    for (double& qi : q) qi -= qsum / n;  // exactly neutral

    EwaldOptions eo;
    eo.alpha = 0.42;
    eo.k_max = 14;
    std::vector<Vec3> fe(pos.size());
    const double e_ref = EwaldSum(box, eo).reciprocal(pos, q, fe);

    PmeOptions po;
    po.alpha = 0.42;
    po.grid_x = po.grid_y = po.grid_z = 32;
    po.order = 4;
    std::vector<Vec3> fp(pos.size());
    const double e_pme = Pme(box, po).reciprocal(pos, q, fp);

    EXPECT_NEAR(e_pme, e_ref, 5e-3 * std::fabs(e_ref) + 2e-3) << "seed " << seed;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      EXPECT_LT(norm(fp[i] - fe[i]), 0.03 * norm(fe[i]) + 5e-3)
          << "seed " << seed << " atom " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Slab-decomposed parallel PME pipeline (pure math, no runtime)
// ---------------------------------------------------------------------------

namespace {

/// Drives the full slab pipeline in-process, exactly as the message-driven
/// runtime does but without any messages: spread -> 2D FFT -> forward
/// transpose -> convolve -> backward transpose -> inverse 2D FFT -> gather,
/// folding energy partials and force shares in slab order.
double run_slab_pipeline(const PmeSlabPlan& plan, std::span<const Vec3> pos,
                         std::span<const double> q, std::span<Vec3> f) {
  const int s_count = plan.slabs();
  std::vector<std::vector<std::complex<double>>> planes(
      static_cast<std::size_t>(s_count));
  std::vector<std::vector<std::complex<double>>> columns(
      static_cast<std::size_t>(s_count));
  for (int s = 0; s < s_count; ++s) {
    planes[static_cast<std::size_t>(s)].assign(plan.plane_points(s), {0.0, 0.0});
    columns[static_cast<std::size_t>(s)].assign(plan.column_points(s), {0.0, 0.0});
    plan.spread(s, pos, q, planes[static_cast<std::size_t>(s)]);
    plan.plane_fft(s, planes[static_cast<std::size_t>(s)], /*inverse=*/false);
  }
  for (int src = 0; src < s_count; ++src) {
    for (int dst = 0; dst < s_count; ++dst) {
      const std::vector<double> block =
          plan.extract_fwd(src, dst, planes[static_cast<std::size_t>(src)]);
      plan.insert_fwd(src, dst, block, columns[static_cast<std::size_t>(dst)]);
    }
  }
  double energy = 0.0;
  for (int s = 0; s < s_count; ++s) {
    energy += plan.convolve(s, columns[static_cast<std::size_t>(s)]);
  }
  for (int src = 0; src < s_count; ++src) {
    for (int dst = 0; dst < s_count; ++dst) {
      const std::vector<double> block =
          plan.extract_bwd(src, dst, columns[static_cast<std::size_t>(src)]);
      plan.insert_bwd(src, dst, block, planes[static_cast<std::size_t>(dst)]);
    }
  }
  for (int s = 0; s < s_count; ++s) {
    plan.plane_fft(s, planes[static_cast<std::size_t>(s)], /*inverse=*/true);
    plan.gather(s, pos, q, planes[static_cast<std::size_t>(s)], f);
  }
  return energy;
}

}  // namespace

TEST(PmeSlabTest, PipelineMatchesSequentialReciprocal) {
  // The slab decomposition with transposes must reproduce the monolithic
  // Pme::reciprocal for every slab count, including slab counts that do not
  // divide the grid. Differences are summation-order only, so the bound is
  // tight.
  Rng rng(4242);
  const Vec3 box{13, 11, 12};
  const int n = 23;
  std::vector<Vec3> pos;
  std::vector<double> q;
  double qsum = 0.0;
  for (int i = 0; i < n; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(rng.uniform(-1.0, 1.0));
    qsum += q.back();
  }
  for (double& qi : q) qi -= qsum / n;

  PmeOptions po;
  po.alpha = 0.46;
  po.grid_x = 16;
  po.grid_y = 8;
  po.grid_z = 16;
  po.order = 4;
  std::vector<Vec3> f_ref(pos.size());
  const double e_ref = Pme(box, po).reciprocal(pos, q, f_ref);

  double f_scale = 0.0;
  for (const Vec3& v : f_ref) f_scale = std::max(f_scale, norm(v));

  for (int slabs : {1, 2, 3, 4, 7}) {
    const PmeSlabPlan plan(box, po, slabs);
    std::vector<Vec3> f(pos.size());
    const double e = run_slab_pipeline(plan, pos, q, f);
    EXPECT_NEAR(e, e_ref, 1e-10 * std::fabs(e_ref)) << "slabs " << slabs;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      EXPECT_LT(norm(f[i] - f_ref[i]), 1e-9 * std::max(1.0, f_scale))
          << "slabs " << slabs << " atom " << i;
    }
  }
}

TEST(PmeSlabTest, SlabCountIsPartOfTheNumericsContract) {
  // Two pipelines with the same slab count agree bitwise; the ranges
  // partition the grid exactly.
  const Vec3 box{12, 12, 12};
  PmeOptions po;
  po.grid_x = po.grid_y = po.grid_z = 8;
  const PmeSlabPlan plan(box, po, 3);
  int z_total = 0, y_total = 0;
  for (int s = 0; s < plan.slabs(); ++s) {
    EXPECT_EQ(plan.z_begin(s), s == 0 ? 0 : plan.z_end(s - 1));
    EXPECT_EQ(plan.y_begin(s), s == 0 ? 0 : plan.y_end(s - 1));
    z_total += plan.z_end(s) - plan.z_begin(s);
    y_total += plan.y_end(s) - plan.y_begin(s);
  }
  EXPECT_EQ(z_total, po.grid_z);
  EXPECT_EQ(y_total, po.grid_y);

  Rng rng(7);
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 12; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  std::vector<Vec3> fa(pos.size()), fb(pos.size());
  const double ea = run_slab_pipeline(plan, pos, q, fa);
  const double eb = run_slab_pipeline(plan, pos, q, fb);
  EXPECT_EQ(ea, eb);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_EQ(fa[i].x, fb[i].x);
    EXPECT_EQ(fa[i].y, fb[i].y);
    EXPECT_EQ(fa[i].z, fb[i].z);
  }
}

// ---------------------------------------------------------------------------
// Full-electrostatics options + sequential reference path
// ---------------------------------------------------------------------------

TEST(FullElecTest, OptionValidationNamesOffendingField) {
  FullElecOptions fe;
  EXPECT_EQ(full_elec_error(fe), nullptr) << "disabled options always pass";
  fe.enabled = true;
  EXPECT_EQ(full_elec_error(fe), nullptr) << "defaults are valid";

  auto expect_error = [](FullElecOptions bad, const char* needle) {
    const char* err = full_elec_error(bad);
    ASSERT_NE(err, nullptr);
    EXPECT_NE(std::string(err).find(needle), std::string::npos) << err;
  };
  FullElecOptions bad;
  bad.enabled = true;
  bad.alpha = 0.0;
  expect_error(bad, "alpha");
  bad = FullElecOptions{};
  bad.enabled = true;
  bad.grid_x = 33;
  expect_error(bad, "grid_x");
  bad = FullElecOptions{};
  bad.enabled = true;
  bad.grid_y = 2;
  expect_error(bad, "grid_y");
  bad = FullElecOptions{};
  bad.enabled = true;
  bad.grid_z = 512;
  expect_error(bad, "grid_z");
  bad = FullElecOptions{};
  bad.enabled = true;
  bad.order = 9;
  expect_error(bad, "order");
  bad = FullElecOptions{};
  bad.enabled = true;
  bad.grid_x = 4;
  bad.order = 6;
  expect_error(bad, "order");
}

namespace {

EngineOptions charged_engine_options() {
  EngineOptions opts;
  opts.nonbonded.cutoff = 6.5;
  opts.nonbonded.switch_dist = 5.5;
  opts.nonbonded.full_elec.enabled = true;
  // alpha ~ 3/cutoff keeps the erfc tail at the cutoff below 3e-5, so the
  // truncation step the kernels inherit from the cutoff scheme is tiny.
  opts.nonbonded.full_elec.alpha = 0.46;
  opts.nonbonded.full_elec.grid_x = 16;
  opts.nonbonded.full_elec.grid_y = 16;
  opts.nonbonded.full_elec.grid_z = 16;
  opts.nonbonded.full_elec.order = 4;
  return opts;
}

Molecule charged_test_box(std::uint64_t seed) {
  TestSystemOptions sys;
  sys.kind = TestSystemKind::kWaterBox;
  sys.box = {13.0, 13.0, 13.0};
  sys.ion_pairs = 3;
  sys.temperature = 300.0;
  sys.seed = seed;
  return make_test_system(sys);
}

}  // namespace

TEST(FullElecTest, ChargedPresetIsNetNeutral) {
  const Molecule mol = charged_test_box(77);
  double qsum = 0.0;
  int ions = 0;
  for (const auto& a : mol.atoms()) {
    qsum += a.charge;
    if (std::fabs(std::fabs(a.charge) - 1.0) < 1e-12) ++ions;
  }
  EXPECT_NEAR(qsum, 0.0, 1e-9);
  EXPECT_EQ(ions, 6);
}

TEST(FullElecTest, SeqForcesMatchFiniteDifferenceOfPotential) {
  const Molecule mol = charged_test_box(78);
  SequentialEngine engine(mol, charged_engine_options());
  std::vector<Vec3> f(engine.forces().begin(), engine.forces().end());

  const double h = 2e-5;
  // Spot-check a few atoms, including an ion (ions were added first, so low
  // indices hit them when present).
  for (int i : {0, 1, 7}) {
    for (int d = 0; d < 3; ++d) {
      auto probe = [&](double delta) {
        auto p = engine.mutable_positions();
        double* c = d == 0 ? &p[static_cast<std::size_t>(i)].x
                    : d == 1 ? &p[static_cast<std::size_t>(i)].y
                             : &p[static_cast<std::size_t>(i)].z;
        *c += delta;
        engine.compute_forces();
        const double e = engine.potential().total();
        *c -= delta;
        return e;
      };
      const double ep = probe(h);
      const double em = probe(-h);
      engine.compute_forces();  // restore
      const double fd = -(ep - em) / (2 * h);
      const double fa = d == 0 ? f[static_cast<std::size_t>(i)].x
                        : d == 1 ? f[static_cast<std::size_t>(i)].y
                                 : f[static_cast<std::size_t>(i)].z;
      EXPECT_NEAR(fa, fd, 2e-3 * std::max(1.0, std::fabs(fd)))
          << "atom " << i << " dim " << d;
    }
  }
}

TEST(FullElecTest, SeqEnergyApproximatelyConserved) {
  const Molecule mol = charged_test_box(79);
  EngineOptions opts = charged_engine_options();
  opts.dt_fs = 0.5;
  SequentialEngine engine(mol, opts);
  const double e0 = engine.total_energy();
  engine.run(25);
  const double e1 = engine.total_energy();
  EXPECT_NEAR(e1, e0, 0.02 * std::fabs(e0) + 0.5);
}

TEST(FullElecTest, KernelsAgreeInFullElecMode) {
  // The erfc substitution must preserve the scalar/tiled agreement contract:
  // identical pair math, differing only in summation order (the same bound
  // the cutoff kernels carry; the golden matrix pins it ULP-tight).
  const Molecule mol = charged_test_box(80);
  EngineOptions scalar_opts = charged_engine_options();
  scalar_opts.nonbonded.kernel = NonbondedKernel::kScalar;
  EngineOptions tiled_opts = charged_engine_options();
  tiled_opts.nonbonded.kernel = NonbondedKernel::kTiled;
  SequentialEngine a(mol, scalar_opts);
  SequentialEngine b(mol, tiled_opts);
  a.run(3);
  b.run(3);
  ASSERT_EQ(a.positions().size(), b.positions().size());
  for (std::size_t i = 0; i < a.positions().size(); ++i) {
    EXPECT_NEAR(norm(a.positions()[i] - b.positions()[i]), 0.0, 1e-10) << i;
  }
  EXPECT_NEAR(a.potential().elec, b.potential().elec,
              1e-11 * std::fabs(a.potential().elec));
  EXPECT_EQ(a.work().pairs_computed, b.work().pairs_computed);
}

TEST(FullElecTest, ExclusionCorrectionsMatchFiniteDifference) {
  // The erf-complement correction term on its own must be a consistent
  // gradient of its energy.
  const Molecule mol = charged_test_box(81);
  const ExclusionTable excl = ExclusionTable::build(mol);
  std::vector<double> q;
  for (const auto& a : mol.atoms()) q.push_back(a.charge);
  std::vector<Vec3> pos(mol.positions().begin(), mol.positions().end());
  const double alpha = 0.46;

  std::vector<Vec3> f(pos.size());
  full_elec_exclusion_corrections(excl, mol.params, alpha, q, pos, f, 0, 1);
  const double h = 1e-6;
  const int i = 1;  // a water hydrogen: has excluded partners
  for (int d = 0; d < 3; ++d) {
    double* c = d == 0 ? &pos[i].x : d == 1 ? &pos[i].y : &pos[i].z;
    std::vector<Vec3> tmp(pos.size());
    *c += h;
    const double ep =
        full_elec_exclusion_corrections(excl, mol.params, alpha, q, pos, tmp, 0, 1);
    *c -= 2 * h;
    const double em =
        full_elec_exclusion_corrections(excl, mol.params, alpha, q, pos, tmp, 0, 1);
    *c += h;
    const double fd = -(ep - em) / (2 * h);
    const double fa = d == 0 ? f[i].x : d == 1 ? f[i].y : f[i].z;
    EXPECT_NEAR(fa, fd, 1e-4 * std::max(1.0, std::fabs(fd))) << d;
  }
}

TEST(FullElecTest, StridedPartitionsSumToWhole) {
  // The (rem, stride) partition used by the parallel PME slabs must cover
  // every correction pair and every self-energy term exactly once.
  const Molecule mol = charged_test_box(82);
  const ExclusionTable excl = ExclusionTable::build(mol);
  std::vector<double> q;
  for (const auto& a : mol.atoms()) q.push_back(a.charge);
  const std::vector<Vec3> pos(mol.positions().begin(), mol.positions().end());
  const double alpha = 0.46;

  std::vector<Vec3> whole_f(pos.size());
  const double whole_e =
      full_elec_exclusion_corrections(excl, mol.params, alpha, q, pos, whole_f, 0, 1);
  const double whole_self = ewald_self_energy_strided(alpha, q, 0, 1);

  const int stride = 5;
  double part_e = 0.0, part_self = 0.0;
  std::vector<Vec3> part_f(pos.size());
  for (int rem = 0; rem < stride; ++rem) {
    part_e += full_elec_exclusion_corrections(excl, mol.params, alpha, q, pos,
                                              part_f, rem, stride);
    part_self += ewald_self_energy_strided(alpha, q, rem, stride);
  }
  EXPECT_NEAR(part_e, whole_e, 1e-10 * std::fabs(whole_e) + 1e-12);
  EXPECT_NEAR(part_self, whole_self, 1e-10 * std::fabs(whole_self));
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_NEAR(norm(part_f[i] - whole_f[i]), 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace scalemd
