// Wire-layer tests: round-trip properties over randomized payloads,
// truncation at every prefix, a byte-flip mutation fuzz (named errors,
// never UB — run under ASan/UBSan in CI), version skew, and the
// bounds-checked payload Decoder.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "rts/wire.hpp"

namespace scalemd {
namespace {

using wire::Decoder;
using wire::Encoder;
using wire::FrameReader;
using wire::FrameType;
using wire::WireError;

std::vector<std::uint8_t> random_payload(std::mt19937_64& rng,
                                         std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::vector<std::uint8_t> p(len_dist(rng));
  for (auto& b : p) b = static_cast<std::uint8_t>(byte_dist(rng));
  return p;
}

TEST(Wire, FrameRoundTripRandomPayloads) {
  std::mt19937_64 rng(0xC0FFEEull);
  const FrameType kinds[] = {FrameType::kTask, FrameType::kIdle,
                             FrameType::kPing, FrameType::kPong,
                             FrameType::kFlush, FrameType::kState,
                             FrameType::kExit, FrameType::kCheckpoint};
  for (int it = 0; it < 200; ++it) {
    const FrameType want_type = kinds[it % 8];
    const std::vector<std::uint8_t> want = random_payload(rng, 4096);
    const std::vector<std::uint8_t> frame = wire::encode_frame(want_type, want);
    ASSERT_EQ(frame.size(), wire::kHeaderSize + want.size() + wire::kTrailerSize);

    FrameType type{};
    std::vector<std::uint8_t> got;
    std::size_t consumed = 0;
    ASSERT_EQ(wire::decode_frame(frame.data(), frame.size(), type, got, consumed),
              WireError::kOk);
    EXPECT_EQ(type, want_type);
    EXPECT_EQ(got, want);
    EXPECT_EQ(consumed, frame.size());
  }
}

TEST(Wire, EveryTruncationPrefixIsNamedNotUB) {
  std::mt19937_64 rng(7u);
  const std::vector<std::uint8_t> payload = random_payload(rng, 96);
  const std::vector<std::uint8_t> frame =
      wire::encode_frame(FrameType::kTask, payload);
  for (std::size_t n = 0; n < frame.size(); ++n) {
    FrameType type{};
    std::vector<std::uint8_t> got;
    std::size_t consumed = 0;
    const WireError e = wire::decode_frame(frame.data(), n, type, got, consumed);
    // A strict prefix of a valid frame is always "feed me more", never a
    // hard error and never a bogus success.
    EXPECT_EQ(e, WireError::kTruncated) << "prefix length " << n;
  }
}

TEST(Wire, MutationFuzzYieldsNamedErrorsOnly) {
  std::mt19937_64 rng(0xFEEDFACEull);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int it = 0; it < 2000; ++it) {
    std::vector<std::uint8_t> frame =
        wire::encode_frame(FrameType::kState, random_payload(rng, 256));
    // Mutate: flip 1-4 bytes and/or truncate.
    std::uniform_int_distribution<std::size_t> pos_dist(0, frame.size() - 1);
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      frame[pos_dist(rng)] = static_cast<std::uint8_t>(byte_dist(rng));
    }
    std::size_t len = frame.size();
    if (rng() % 3 == 0) len = rng() % (frame.size() + 1);

    FrameType type{};
    std::vector<std::uint8_t> got;
    std::size_t consumed = 0;
    const WireError e = wire::decode_frame(frame.data(), len, type, got, consumed);
    // Whatever the mutation did, the decoder must return a member of the
    // WireError enum (ASan/UBSan in CI catch anything worse). kOk is legal
    // only when the mutation happened to keep the frame self-consistent.
    switch (e) {
      case WireError::kOk:
        EXPECT_LE(consumed, len);
        break;
      case WireError::kTruncated:
      case WireError::kBadMagic:
      case WireError::kBadVersion:
      case WireError::kBadType:
      case WireError::kOversized:
      case WireError::kBadChecksum:
      case WireError::kMalformed:
        break;
      default:
        FAIL() << "unexpected wire error code " << static_cast<int>(e);
    }
    // Every error has a printable name.
    EXPECT_NE(wire::wire_error_name(e), nullptr);
  }
}

TEST(Wire, ChecksumCorruptionDetected) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::uint8_t> frame = wire::encode_frame(FrameType::kTask, payload);
  frame[wire::kHeaderSize + 3] ^= 0x40;  // flip a payload bit
  FrameType type{};
  std::vector<std::uint8_t> got;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_frame(frame.data(), frame.size(), type, got, consumed),
            WireError::kBadChecksum);
}

TEST(Wire, VersionSkewRejected) {
  std::vector<std::uint8_t> frame =
      wire::encode_frame(FrameType::kPing, {0xAB});
  // Major version lives at offset 4 (after the u32 magic), little-endian.
  const std::uint16_t future = wire::kVersionMajor + 1;
  std::memcpy(frame.data() + 4, &future, sizeof(future));
  FrameType type{};
  std::vector<std::uint8_t> got;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_frame(frame.data(), frame.size(), type, got, consumed),
            WireError::kBadVersion);
}

TEST(Wire, BadMagicAndBadTypeAndOversized) {
  std::vector<std::uint8_t> frame = wire::encode_frame(FrameType::kPing, {});
  FrameType type{};
  std::vector<std::uint8_t> got;
  std::size_t consumed = 0;

  std::vector<std::uint8_t> bad = frame;
  bad[0] ^= 0xFF;
  EXPECT_EQ(wire::decode_frame(bad.data(), bad.size(), type, got, consumed),
            WireError::kBadMagic);

  bad = frame;
  const std::uint32_t bogus_type = 0xDEADu;
  std::memcpy(bad.data() + 8, &bogus_type, sizeof(bogus_type));
  EXPECT_EQ(wire::decode_frame(bad.data(), bad.size(), type, got, consumed),
            WireError::kBadType);

  bad = frame;
  const std::uint64_t huge = wire::kMaxPayload + 1;
  std::memcpy(bad.data() + 12, &huge, sizeof(huge));
  EXPECT_EQ(wire::decode_frame(bad.data(), bad.size(), type, got, consumed),
            WireError::kOversized);
}

TEST(Wire, FrameReaderReassemblesChunkedStream) {
  std::mt19937_64 rng(42u);
  // Three frames concatenated, fed one byte at a time.
  std::vector<std::vector<std::uint8_t>> payloads = {
      random_payload(rng, 64), {}, random_payload(rng, 200)};
  const FrameType types[] = {FrameType::kTask, FrameType::kIdle,
                             FrameType::kState};
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    const auto f = wire::encode_frame(types[i], payloads[static_cast<std::size_t>(i)]);
    stream.insert(stream.end(), f.begin(), f.end());
  }

  FrameReader reader;
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    reader.feed(&stream[i], 1);
    FrameType type{};
    std::vector<std::uint8_t> payload;
    WireError e;
    while ((e = reader.next(type, payload)) == WireError::kOk) {
      ASSERT_LT(decoded, 3u);
      EXPECT_EQ(type, types[decoded]);
      EXPECT_EQ(payload, payloads[decoded]);
      ++decoded;
    }
    EXPECT_EQ(e, WireError::kTruncated);
  }
  EXPECT_EQ(decoded, 3u);
}

TEST(Wire, EncoderDecoderRoundTripWithNaNBits) {
  Encoder e;
  e.u8(0x7F);
  e.u32(0xDEADBEEFu);
  e.u64(~0ull);
  e.i64(-1234567890123456789ll);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  e.f64(nan);
  e.f64(inf);
  e.f64(-0.0);
  e.f64(3.141592653589793);
  e.blob({9, 8, 7});

  Decoder d(e.bytes());
  std::uint8_t a;
  std::uint32_t b;
  std::uint64_t c;
  std::int64_t i;
  double f1, f2, f3, f4;
  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(d.u8(a));
  ASSERT_TRUE(d.u32(b));
  ASSERT_TRUE(d.u64(c));
  ASSERT_TRUE(d.i64(i));
  ASSERT_TRUE(d.f64(f1));
  ASSERT_TRUE(d.f64(f2));
  ASSERT_TRUE(d.f64(f3));
  ASSERT_TRUE(d.f64(f4));
  ASSERT_TRUE(d.blob(blob));
  EXPECT_TRUE(d.done());

  EXPECT_EQ(a, 0x7F);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, ~0ull);
  EXPECT_EQ(i, -1234567890123456789ll);
  // Doubles travel as raw bits: NaN payload and the sign of zero survive.
  std::uint64_t nan_bits_in, nan_bits_out;
  std::memcpy(&nan_bits_in, &nan, 8);
  std::memcpy(&nan_bits_out, &f1, 8);
  EXPECT_EQ(nan_bits_in, nan_bits_out);
  EXPECT_EQ(f2, inf);
  EXPECT_TRUE(std::signbit(f3));
  EXPECT_EQ(f4, 3.141592653589793);
  EXPECT_EQ(blob, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(Wire, DecoderRefusesOverrunAndLatches) {
  Encoder e;
  e.u32(5);
  Decoder d(e.bytes());
  std::uint64_t v;
  EXPECT_FALSE(d.u64(v));  // only 4 bytes available
  EXPECT_FALSE(d.ok());
  // Latched: further reads keep failing even if bytes would fit.
  std::uint32_t w;
  EXPECT_FALSE(d.u32(w));
  EXPECT_FALSE(d.done());
}

TEST(Wire, DecoderCountRejectsCorruptLengths) {
  // A count field claiming billions of elements against a tiny payload must
  // fail before any allocation happens.
  Encoder e;
  e.u64(1ull << 40);  // absurd element count
  e.f64(1.0);
  Decoder d(e.bytes());
  std::uint64_t n;
  EXPECT_FALSE(d.count(n, sizeof(double)));
  EXPECT_FALSE(d.ok());

  // A consistent count passes.
  Encoder e2;
  e2.u64(3);
  e2.f64(1.0);
  e2.f64(2.0);
  e2.f64(3.0);
  Decoder d2(e2.bytes());
  ASSERT_TRUE(d2.count(n, sizeof(double)));
  EXPECT_EQ(n, 3u);
  double x;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(d2.f64(x));
  EXPECT_TRUE(d2.done());
}

TEST(Wire, TrailingGarbageIsNotDone) {
  Encoder e;
  e.u32(1);
  e.u8(0xCC);  // extra byte a strict decoder must notice
  Decoder d(e.bytes());
  std::uint32_t v;
  ASSERT_TRUE(d.u32(v));
  EXPECT_TRUE(d.ok());
  EXPECT_FALSE(d.done());
  EXPECT_EQ(d.remaining(), 1u);
}

TEST(Wire, FdRoundTripThroughPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::mt19937_64 rng(11u);
  const std::vector<std::uint8_t> payload = random_payload(rng, 512);
  ASSERT_TRUE(wire::write_frame(fds[1], FrameType::kCheckpoint, payload));
  FrameType type{};
  std::vector<std::uint8_t> got;
  EXPECT_EQ(wire::read_frame(fds[0], type, got), WireError::kOk);
  EXPECT_EQ(type, FrameType::kCheckpoint);
  EXPECT_EQ(got, payload);
  close(fds[0]);
  close(fds[1]);
}

}  // namespace
}  // namespace scalemd
