#include <gtest/gtest.h>

#include <cmath>

#include "topo/exclusions.hpp"
#include "topo/molecule.hpp"
#include "topo/parameters.hpp"
#include "util/units.hpp"

namespace scalemd {
namespace {

/// Linear pentane-like chain 0-1-2-3-4 used by the exclusion tests.
Molecule make_chain5() {
  Molecule m;
  m.box = {20, 20, 20};
  const int t = m.params.add_lj_type(0.1, 2.0);
  const int b = m.params.add_bond_param(100.0, 1.5);
  m.params.finalize();
  for (int i = 0; i < 5; ++i) {
    m.add_atom({12.0, 0.0, t}, {2.0 + 1.5 * i, 10, 10});
  }
  for (int i = 0; i < 4; ++i) m.add_bond(i, i + 1, b);
  return m;
}

TEST(ParameterTableTest, LorentzBerthelotStyleMixing) {
  ParameterTable pt;
  const int a = pt.add_lj_type(0.16, 1.8);
  const int b = pt.add_lj_type(0.04, 1.2);
  pt.finalize();
  const LJPair& mixed = pt.lj_pair(a, b);
  const double eps = std::sqrt(0.16 * 0.04);
  const double rmin = 1.8 + 1.2;
  const double r6 = std::pow(rmin, 6);
  EXPECT_NEAR(mixed.a, eps * r6 * r6, 1e-9);
  EXPECT_NEAR(mixed.b, 2.0 * eps * r6, 1e-9);
  // Symmetric.
  EXPECT_DOUBLE_EQ(pt.lj_pair(a, b).a, pt.lj_pair(b, a).a);
}

TEST(ParameterTableTest, PairTableMinimumAtRmin) {
  ParameterTable pt;
  const int a = pt.add_lj_type(0.2, 1.9);
  pt.finalize();
  const LJPair& p = pt.lj_pair(a, a);
  const double rmin = 3.8;
  auto energy = [&](double r) {
    return p.a / std::pow(r, 12) - p.b / std::pow(r, 6);
  };
  // Minimum value is -eps at r = rmin.
  EXPECT_NEAR(energy(rmin), -0.2, 1e-9);
  EXPECT_GT(energy(rmin * 0.98), energy(rmin));
  EXPECT_GT(energy(rmin * 1.02), energy(rmin));
}

TEST(MoleculeTest, AddAndCount) {
  Molecule m = make_chain5();
  EXPECT_EQ(m.atom_count(), 5);
  EXPECT_EQ(m.bonds().size(), 4u);
  EXPECT_NO_THROW(m.validate());
  EXPECT_DOUBLE_EQ(m.total_mass(), 60.0);
}

TEST(MoleculeTest, ValidateCatchesBadIndices) {
  Molecule m = make_chain5();
  m.add_bond(0, 99, 0);
  EXPECT_THROW(m.validate(), std::runtime_error);
}

TEST(MoleculeTest, ValidateCatchesOutOfBox) {
  Molecule m = make_chain5();
  m.positions()[0] = {-1, 0, 0};
  EXPECT_THROW(m.validate(), std::runtime_error);
}

TEST(MoleculeTest, MergeOffsetsIndicesAndPositions) {
  Molecule a = make_chain5();
  const Molecule b = make_chain5();
  a.merge(b, {0, 5, 0});
  EXPECT_EQ(a.atom_count(), 10);
  EXPECT_EQ(a.bonds().size(), 8u);
  EXPECT_EQ(a.bonds()[4].a, 5);
  EXPECT_EQ(a.bonds()[4].b, 6);
  EXPECT_DOUBLE_EQ(a.positions()[5].y, 15.0);
}

TEST(MoleculeTest, VelocityAssignmentMatchesTemperature) {
  Molecule m;
  m.box = {100, 100, 100};
  const int t = m.params.add_lj_type(0.1, 2.0);
  m.params.finalize();
  for (int i = 0; i < 5000; ++i) {
    m.add_atom({12.0, 0.0, t}, {50, 50, 50});
  }
  m.assign_velocities(300.0, 1234);
  double ke = 0.0;
  Vec3 p;
  for (int i = 0; i < m.atom_count(); ++i) {
    ke += 0.5 * 12.0 * norm2(m.velocities()[static_cast<std::size_t>(i)]);
    p += m.velocities()[static_cast<std::size_t>(i)] * 12.0;
  }
  // Momentum removed exactly; temperature within sampling error.
  EXPECT_NEAR(norm(p), 0.0, 1e-9);
  const double temp = 2.0 * ke / (3.0 * m.atom_count() * units::kBoltzmann);
  EXPECT_NEAR(temp, 300.0, 10.0);
}

TEST(ExclusionTest, ChainTopologyKinds) {
  const Molecule m = make_chain5();
  const ExclusionTable t = ExclusionTable::build(m);
  // 1-2 and 1-3 are full exclusions.
  EXPECT_EQ(t.check(0, 1), ExclusionKind::kFull);
  EXPECT_EQ(t.check(0, 2), ExclusionKind::kFull);
  // 1-4 is modified.
  EXPECT_EQ(t.check(0, 3), ExclusionKind::kModified14);
  // 1-5 interacts fully.
  EXPECT_EQ(t.check(0, 4), ExclusionKind::kNone);
  // Self.
  EXPECT_EQ(t.check(2, 2), ExclusionKind::kFull);
}

TEST(ExclusionTest, Symmetry) {
  const Molecule m = make_chain5();
  const ExclusionTable t = ExclusionTable::build(m);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(t.check(i, j), t.check(j, i)) << i << "," << j;
    }
  }
}

TEST(ExclusionTest, RingClosesCorrectly) {
  // Cyclohexane-like ring of 6: every pair is within 3 bonds.
  Molecule m;
  m.box = {20, 20, 20};
  const int t = m.params.add_lj_type(0.1, 2.0);
  const int b = m.params.add_bond_param(100.0, 1.5);
  m.params.finalize();
  for (int i = 0; i < 6; ++i) {
    m.add_atom({12.0, 0.0, t},
               {10 + 3 * std::cos(i * M_PI / 3), 10 + 3 * std::sin(i * M_PI / 3), 10});
  }
  for (int i = 0; i < 6; ++i) m.add_bond(i, (i + 1) % 6, b);
  const ExclusionTable tab = ExclusionTable::build(m);
  EXPECT_EQ(tab.check(0, 1), ExclusionKind::kFull);
  EXPECT_EQ(tab.check(0, 2), ExclusionKind::kFull);
  // Atom 3 is three bonds away in both directions.
  EXPECT_EQ(tab.check(0, 3), ExclusionKind::kModified14);
}

TEST(ExclusionTest, ShorterPathWins) {
  // Triangle: 0-1, 1-2, 0-2. Atom 2 is both 1 and 2 bonds from 0 -> kFull.
  Molecule m;
  m.box = {20, 20, 20};
  const int t = m.params.add_lj_type(0.1, 2.0);
  const int b = m.params.add_bond_param(100.0, 1.5);
  m.params.finalize();
  m.add_atom({12.0, 0.0, t}, {5, 5, 5});
  m.add_atom({12.0, 0.0, t}, {6.5, 5, 5});
  m.add_atom({12.0, 0.0, t}, {5.75, 6.3, 5});
  m.add_bond(0, 1, b);
  m.add_bond(1, 2, b);
  m.add_bond(0, 2, b);
  const ExclusionTable tab = ExclusionTable::build(m);
  EXPECT_EQ(tab.check(0, 2), ExclusionKind::kFull);
}

TEST(ExclusionTest, IsolatedAtomsExcludeNothing) {
  Molecule m;
  m.box = {10, 10, 10};
  const int t = m.params.add_lj_type(0.1, 2.0);
  m.params.finalize();
  m.add_atom({12.0, 0.0, t}, {2, 2, 2});
  m.add_atom({12.0, 0.0, t}, {8, 8, 8});
  const ExclusionTable tab = ExclusionTable::build(m);
  EXPECT_EQ(tab.check(0, 1), ExclusionKind::kNone);
  EXPECT_EQ(tab.full_entry_count(), 0u);
  EXPECT_EQ(tab.modified_entry_count(), 0u);
}

}  // namespace
}  // namespace scalemd
