// Unit tests for the continuous-benchmarking subsystem (src/perf): the JSON
// model, the BenchRunner's robust statistics, the versioned report schema,
// and the noise-aware regression gate. Also pins the v1 schema against
// tests/perf/bench_schema_v1.json — evolution must stay additive-only.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "perf/bench_runner.hpp"
#include "perf/compare.hpp"
#include "perf/env.hpp"
#include "perf/json.hpp"
#include "perf/report.hpp"
#include "perf/suites.hpp"

#ifndef SCALEMD_TEST_DATA_DIR
#define SCALEMD_TEST_DATA_DIR "tests"
#endif

namespace scalemd::perf {
namespace {

// --- JSON ------------------------------------------------------------------

TEST(JsonTest, ScalarRoundTrip) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(JsonValue::parse("\"a\\n\\\"b\\\"\"").as_string(), "a\n\"b\"");
}

TEST(JsonTest, NestedRoundTripPreservesOrderAndValues) {
  JsonValue obj = JsonValue::object();
  obj.set("zeta", 1);
  obj.set("alpha", JsonValue::array());
  JsonValue arr = JsonValue::array();
  arr.push_back(1.5);
  arr.push_back("two");
  arr.push_back(JsonValue());
  obj.set("alpha", std::move(arr));
  obj.set("flag", false);

  const JsonValue back = JsonValue::parse(obj.dump());
  ASSERT_TRUE(back.is_object());
  // Insertion order survives the round trip (diffable artifacts).
  EXPECT_EQ(back.members()[0].first, "zeta");
  EXPECT_EQ(back.members()[1].first, "alpha");
  EXPECT_DOUBLE_EQ(back.at("alpha").items()[0].as_number(), 1.5);
  EXPECT_EQ(back.at("alpha").items()[1].as_string(), "two");
  EXPECT_TRUE(back.at("alpha").items()[2].is_null());
  EXPECT_EQ(back.at("flag").as_bool(), false);
}

TEST(JsonTest, ShortestRoundTripNumbers) {
  JsonValue v(0.1);
  EXPECT_DOUBLE_EQ(JsonValue::parse(v.dump()).as_number(), 0.1);
  JsonValue tiny(5.0e-324);  // denormal min survives
  EXPECT_DOUBLE_EQ(JsonValue::parse(tiny.dump()).as_number(), 5.0e-324);
}

TEST(JsonTest, NonFiniteSerializesAsNull) {
  JsonValue v(std::nan(""));
  EXPECT_EQ(v.dump(), "null\n");
}

TEST(JsonTest, ParseErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  oops\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos)
        << "message was: " << e.what();
  }
  EXPECT_THROW(JsonValue::parse("[1, 2] trailing"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\": }"), JsonError);
  EXPECT_THROW(JsonValue::parse(""), JsonError);
}

TEST(JsonTest, KindMismatchThrows) {
  const JsonValue num(1.0);
  EXPECT_THROW(num.as_string(), JsonError);
  EXPECT_THROW(num.at("k"), JsonError);
  JsonValue obj = JsonValue::object();
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), JsonError);
}

// --- BenchRecord / BenchRunner --------------------------------------------

TEST(BenchRecordTest, FinalizeComputesRobustStats) {
  BenchRecord rec;
  rec.samples = {3.0, 1.0, 2.0, 100.0, 2.5};
  rec.finalize();
  EXPECT_DOUBLE_EQ(rec.min, 1.0);
  EXPECT_DOUBLE_EQ(rec.median, 2.5);
  // |dev from 2.5| = {0.5, 1.5, 0.5, 97.5, 0} -> MAD 0.5: outlier-immune.
  EXPECT_DOUBLE_EQ(rec.mad, 0.5);
}

TEST(BenchRunnerTest, TimeCollectsRequestedReps) {
  BenchRunner runner({.reps = 4, .warmup = 2});
  int calls = 0;
  const BenchRecord& rec =
      runner.time("t", "seconds", [&calls] { ++calls; });
  EXPECT_EQ(calls, 6);  // 2 warmup + 4 timed
  EXPECT_EQ(rec.reps, 4);
  EXPECT_EQ(rec.warmup, 2);
  EXPECT_EQ(rec.samples.size(), 4u);
  EXPECT_FALSE(rec.deterministic);
  EXPECT_GE(rec.min, 0.0);
}

TEST(BenchRunnerTest, RecordValueIsDeterministicSingleSample) {
  BenchRunner runner;
  const BenchRecord& rec =
      runner.record_value("v", "virtual_seconds", 1.25).param("pes", 8);
  EXPECT_TRUE(rec.deterministic);
  EXPECT_DOUBLE_EQ(rec.median, 1.25);
  EXPECT_DOUBLE_EQ(rec.mad, 0.0);
  ASSERT_EQ(rec.params.size(), 1u);
  EXPECT_EQ(rec.params[0].first, "pes");
}

TEST(BenchRecordTest, JsonRoundTripRederivesStats) {
  BenchRecord rec;
  rec.name = "x";
  rec.metric = "seconds_per_eval";
  rec.samples = {2.0, 1.0, 3.0};
  rec.reps = 3;
  rec.finalize();
  rec.param("atoms", 42).label("kernel", "tiled");

  JsonValue j = rec.to_json();
  // A hand-edited median must not survive the round trip: stats are
  // rederived from samples on load.
  j.set("median", 999.0);
  const BenchRecord back = BenchRecord::from_json(j);
  EXPECT_EQ(back.name, "x");
  EXPECT_DOUBLE_EQ(back.median, 2.0);
  EXPECT_DOUBLE_EQ(back.min, 1.0);
  ASSERT_EQ(back.params.size(), 1u);
  EXPECT_DOUBLE_EQ(back.params[0].second, 42.0);
  ASSERT_EQ(back.labels.size(), 1u);
  EXPECT_EQ(back.labels[0].second, "tiled");
}

// --- Report schema ---------------------------------------------------------

TEST(BenchReportTest, SaveLoadRoundTrip) {
  BenchReport report = make_report("unit");
  BenchRunner runner;
  runner.record_value("a/x", "s", 1.0);
  runner.record_samples("a/y", "s", {0.2, 0.1, 0.3});
  report.benchmarks = runner.take_records();

  const std::string path = testing::TempDir() + "scalemd_report.json";
  save_report(report, path);
  const BenchReport back = load_report(path);
  EXPECT_EQ(back.suite, "unit");
  ASSERT_EQ(back.benchmarks.size(), 2u);
  EXPECT_EQ(back.benchmarks[0].name, "a/x");
  EXPECT_TRUE(back.benchmarks[0].deterministic);
  EXPECT_DOUBLE_EQ(back.benchmarks[1].median, 0.2);
  EXPECT_EQ(back.environment.compiler, report.environment.compiler);
  std::remove(path.c_str());
}

TEST(BenchReportTest, RejectsWrongMagicAndNewerVersion) {
  JsonValue j = make_report("x").to_json();
  j.set("schema", "not-scalemd");
  EXPECT_THROW(BenchReport::from_json(j), BenchSchemaError);
  JsonValue j2 = make_report("x").to_json();
  j2.set("schema_version", kBenchSchemaVersion + 1);
  EXPECT_THROW(BenchReport::from_json(j2), BenchSchemaError);
}

TEST(BenchReportTest, MergeAppendsRecordsKeepsReceiverIdentity) {
  BenchReport a = make_report("smoke");
  BenchRunner ra;
  ra.record_value("a", "s", 1.0);
  a.benchmarks = ra.take_records();

  BenchReport b = make_report("paper");
  BenchRunner rb;
  rb.record_value("b", "s", 2.0);
  b.benchmarks = rb.take_records();

  a.merge(std::move(b));
  EXPECT_EQ(a.suite, "smoke");
  ASSERT_EQ(a.benchmarks.size(), 2u);
  EXPECT_NE(a.find("b"), nullptr);
  EXPECT_EQ(a.find("nope"), nullptr);
}

TEST(BenchEnvironmentTest, CaptureFillsCoreFields) {
  const BenchEnvironment env = capture_environment();
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_GE(env.hardware_threads, 1);
  // Tolerant from_json: absent members keep defaults rather than throwing.
  const BenchEnvironment sparse =
      BenchEnvironment::from_json(JsonValue::object());
  EXPECT_EQ(sparse.git_sha, "unknown");
}

// --- Schema stability: additive-only vs the checked-in v1 reference --------

std::set<std::string> member_keys(const JsonValue& obj) {
  std::set<std::string> keys;
  for (const auto& [k, v] : obj.members()) keys.insert(k);
  return keys;
}

void expect_superset(const JsonValue& emitted, const JsonValue& reference,
                     const std::string& where) {
  for (const std::string& key : member_keys(reference)) {
    EXPECT_NE(emitted.find(key), nullptr)
        << "schema regression: v1 field '" << where << "." << key
        << "' missing from emitted reports (schema evolution must be "
           "additive-only; bump schema_version for removals)";
  }
}

TEST(BenchSchemaTest, EmittedReportsStayFieldCompatibleWithV1) {
  const BenchReport v1 = load_report(std::string(SCALEMD_TEST_DATA_DIR) +
                                     "/perf/bench_schema_v1.json");
  ASSERT_EQ(v1.benchmarks.size(), 2u);  // the reference itself still loads

  const JsonValue ref = JsonValue::parse(
      [&] {
        std::FILE* f = std::fopen((std::string(SCALEMD_TEST_DATA_DIR) +
                                   "/perf/bench_schema_v1.json")
                                      .c_str(),
                                  "rb");
        std::string text;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
        std::fclose(f);
        return text;
      }());

  // Emit a real report with one wall-clock and one deterministic record.
  BenchReport report = make_report("schema-check");
  BenchRunner runner({.reps = 2, .warmup = 0});
  runner.time("w", "seconds_per_eval", [] {}).param("atoms", 1).label("kernel", "k");
  runner.record_value("d", "virtual_seconds_per_step", 1.0).param("pes", 1);
  report.benchmarks = runner.take_records();
  const JsonValue emitted = report.to_json();

  expect_superset(emitted, ref, "report");
  expect_superset(emitted.at("environment"), ref.at("environment"),
                  "environment");
  for (const JsonValue& emitted_rec : emitted.at("benchmarks").items()) {
    for (const JsonValue& ref_rec : ref.at("benchmarks").items()) {
      expect_superset(emitted_rec, ref_rec, "benchmark");
    }
  }
  EXPECT_EQ(emitted.at("schema").as_string(), ref.at("schema").as_string());
  EXPECT_EQ(emitted.at("schema_version").as_number(),
            ref.at("schema_version").as_number());
}

// --- The regression gate ---------------------------------------------------

BenchReport report_with(const std::string& name, std::vector<double> samples,
                        bool deterministic = false) {
  BenchReport r = make_report("gate");
  BenchRecord rec;
  rec.name = name;
  rec.deterministic = deterministic;
  rec.samples = std::move(samples);
  rec.reps = static_cast<int>(rec.samples.size());
  rec.finalize();
  r.benchmarks.push_back(std::move(rec));
  return r;
}

TEST(CompareTest, IdenticalReportsPass) {
  const BenchReport a = report_with("x", {1.0, 1.1, 0.9});
  const CompareResult res = compare_reports(a, a);
  EXPECT_FALSE(res.failed);
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, BenchDelta::Verdict::kOk);
}

TEST(CompareTest, TwoFoldSlowdownFailsNamingTheBenchmark) {
  const BenchReport base = report_with("forces/tiled", {1.0, 1.05, 0.95});
  const BenchReport slow = report_with("forces/tiled", {2.0, 2.1, 1.9});
  const CompareResult res = compare_reports(base, slow);
  EXPECT_TRUE(res.failed);
  ASSERT_EQ(res.offenders().size(), 1u);
  EXPECT_EQ(res.offenders()[0], "forces/tiled");
  EXPECT_NE(render_comparison(res).find("forces/tiled"), std::string::npos);
  EXPECT_NE(render_comparison(res).find("FAIL"), std::string::npos);
}

TEST(CompareTest, MadGateAbsorbsNoisyBaselines) {
  // Baseline is noisy: median 1.0, MAD 0.2 -> gate max(5%, 3*0.2) = 0.6.
  const BenchReport base = report_with("n", {1.0, 1.2, 0.8, 1.25, 0.75});
  // +40% is inside the noise gate -> OK despite exceeding the 5% floor.
  const BenchReport cand = report_with("n", {1.4, 1.4, 1.4, 1.4, 1.4});
  const CompareResult res = compare_reports(base, cand);
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.deltas[0].verdict, BenchDelta::Verdict::kOk);
}

TEST(CompareTest, DeterministicRecordsGetTheTightGate) {
  // Deterministic: MAD 0, so anything beyond the 5% floor is real.
  const BenchReport base = report_with("d", {1.0}, /*deterministic=*/true);
  const BenchReport cand = report_with("d", {1.08}, /*deterministic=*/true);
  EXPECT_TRUE(compare_reports(base, cand).failed);
  const BenchReport close = report_with("d", {1.03}, /*deterministic=*/true);
  EXPECT_FALSE(compare_reports(base, close).failed);
}

TEST(CompareTest, ImprovementIsFlaggedNotFailed) {
  const BenchReport base = report_with("i", {2.0, 2.0, 2.0});
  const BenchReport fast = report_with("i", {1.0, 1.0, 1.0});
  const CompareResult res = compare_reports(base, fast);
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.deltas[0].verdict, BenchDelta::Verdict::kImproved);
}

TEST(CompareTest, MissingBenchmarkFailsUnlessAllowed) {
  const BenchReport base = report_with("gone", {1.0});
  BenchReport cand = make_report("gate");  // empty candidate
  EXPECT_TRUE(compare_reports(base, cand).failed);
  CompareOptions allow;
  allow.allow_missing = true;
  EXPECT_FALSE(compare_reports(base, cand, allow).failed);
}

TEST(CompareTest, NewBenchmarkIsInformational) {
  BenchReport base = make_report("gate");
  const BenchReport cand = report_with("fresh", {1.0});
  const CompareResult res = compare_reports(base, cand);
  EXPECT_FALSE(res.failed);
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, BenchDelta::Verdict::kNew);
}

TEST(CompareTest, CustomThresholdsApply) {
  const BenchReport base = report_with("t", {1.0, 1.0, 1.0});
  const BenchReport cand = report_with("t", {1.2, 1.2, 1.2});
  CompareOptions loose;
  loose.rel_min = 0.25;
  EXPECT_FALSE(compare_reports(base, cand, loose).failed);
  CompareOptions tight;
  tight.rel_min = 0.10;
  EXPECT_TRUE(compare_reports(base, cand, tight).failed);
}

// --- Suites ---------------------------------------------------------------

TEST(SuiteTest, SmokeSuiteProducesSchemaValidSelfConsistentReport) {
  SuiteOptions opts;
  opts.reps = 2;
  opts.warmup = 0;
  opts.threads = 2;
  opts.scale = 0.02;  // tiny box: keep the unit suite fast
  const BenchReport report = run_smoke_suite(opts);
  EXPECT_EQ(report.suite, "smoke");
  EXPECT_GE(report.benchmarks.size(), 5u);
  EXPECT_NE(report.find("forces/scalar"), nullptr);
  EXPECT_NE(report.find("runtime/sim_step"), nullptr);
  EXPECT_TRUE(report.find("runtime/sim_step")->deterministic);

  // Round-trips through the serialized form.
  const BenchReport back = BenchReport::from_json(
      JsonValue::parse(report.to_json().dump()));
  EXPECT_EQ(back.benchmarks.size(), report.benchmarks.size());

  // The gate on an identical run passes...
  EXPECT_FALSE(compare_reports(report, back).failed);
  // ...and flags every benchmark after an injected 2x slowdown.
  BenchReport slow = back;
  for (BenchRecord& rec : slow.benchmarks) {
    for (double& s : rec.samples) s *= 2.0;
    rec.finalize();
  }
  const CompareResult res = compare_reports(report, slow);
  EXPECT_TRUE(res.failed);
  // Every deterministic record has MAD 0, so 2x must always trip its gate.
  // Wall-clock records at this tiny scale may have a noise gate wide enough
  // to absorb 2x — that is the gate doing its job, not a miss.
  const auto offenders = res.offenders();
  for (const BenchRecord& rec : report.benchmarks) {
    if (!rec.deterministic) continue;
    EXPECT_NE(std::find(offenders.begin(), offenders.end(), rec.name),
              offenders.end())
        << "deterministic benchmark " << rec.name << " escaped the gate";
  }
}

TEST(SuiteTest, UnknownSuiteThrows) {
  EXPECT_THROW(run_suite("nope", SuiteOptions{}), std::invalid_argument);
  const auto names = suite_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "smoke"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "paper"), names.end());
}

TEST(SuiteTest, ClipLadderKeepsAtLeastTwo) {
  EXPECT_EQ(clip_ladder({1, 2, 4, 8}, 1.0).size(), 4u);
  EXPECT_EQ(clip_ladder({1, 2, 4, 8}, 0.01).size(), 2u);
  EXPECT_EQ(clip_ladder({1}, 0.01).size(), 1u);  // can't keep more than exist
}

}  // namespace
}  // namespace scalemd::perf
