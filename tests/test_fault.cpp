#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/fault.hpp"
#include "des/simulator.hpp"
#include "trace/audit.hpp"
#include "trace/event_log.hpp"
#include "trace/timeline.hpp"

namespace scalemd {
namespace {

MachineModel fault_test_machine() {
  MachineModel m;
  m.name = "fault-test";
  m.send_overhead = 0.1;
  m.recv_overhead = 0.05;
  m.latency = 1.0;
  m.byte_time = 0.0;
  m.pack_byte_cost = 0.0;
  m.local_overhead = 0.01;
  return m;
}

/// One remote hop: PE 0 sends a counting message to PE 1.
int deliveries_under(const FaultPlan& plan, int sends = 1) {
  Simulator sim(2, fault_test_machine());
  sim.set_fault_plan(plan);
  int delivered = 0;
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   for (int i = 0; i < sends; ++i) {
                     TaskMsg m;
                     m.bytes = 100;
                     m.fn = [&delivered](ExecContext&) { ++delivered; };
                     ctx.send(1, m);
                   }
                 }});
  sim.run();
  EXPECT_TRUE(sim.idle());
  EXPECT_TRUE(sim.accounting().conserved());
  EXPECT_EQ(sim.accounting().pending(), 0u);
  return delivered;
}

// --- fault-plan parsing ----------------------------------------------------

TEST(FaultPlanParseTest, FullSchemaRoundTrips) {
  const std::string text =
      "# chaos schedule\n"
      "seed 42\n"
      "\n"
      "drop 0.02\n"
      "dup 0.01\n"
      "delay 0.05 2e-4\n"
      "slowdown 3 2.5 0.125\n"
      "slowdown 1 1.5\n"
      "fail 2 0.5\n";
  FaultPlan plan;
  FaultPlanParseError err;
  ASSERT_TRUE(parse_fault_plan_text(text, "inline", plan, err)) << err.render();
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.drop_prob, 0.02);
  EXPECT_DOUBLE_EQ(plan.dup_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.delay_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.delay_max, 2e-4);
  ASSERT_EQ(plan.slowdowns.size(), 2u);
  EXPECT_EQ(plan.slowdowns[0].pe, 3);
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].factor, 2.5);
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].from_time, 0.125);
  EXPECT_DOUBLE_EQ(plan.slowdowns[1].from_time, 0.0);
  ASSERT_EQ(plan.failures.size(), 1u);
  EXPECT_EQ(plan.failures[0].pe, 2);
  EXPECT_DOUBLE_EQ(plan.failures[0].at_time, 0.5);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanParseTest, ErrorsNameFileLineAndReason) {
  FaultPlan plan;
  FaultPlanParseError err;
  EXPECT_FALSE(
      parse_fault_plan_text("seed 1\nwobble 3\n", "plan.txt", plan, err));
  EXPECT_EQ(err.file, "plan.txt");
  EXPECT_EQ(err.line, 2);
  EXPECT_FALSE(err.reason.empty());
  EXPECT_NE(err.render().find("plan.txt:2"), std::string::npos);

  EXPECT_FALSE(parse_fault_plan_text("drop 1.5\n", "p", plan, err));
  EXPECT_EQ(err.line, 1);

  EXPECT_FALSE(parse_fault_plan_text("fail -1 0.5\n", "p", plan, err));
  EXPECT_EQ(err.line, 1);
}

TEST(FaultPlanParseTest, MissingFileIsAnErrorNotACrash) {
  FaultPlan plan;
  FaultPlanParseError err;
  EXPECT_FALSE(parse_fault_plan("/nonexistent/fault.plan", plan, err));
  EXPECT_EQ(err.file, "/nonexistent/fault.plan");
}

// --- message faults --------------------------------------------------------

TEST(FaultEngineTest, DropProbabilityOneLosesEveryRemoteMessage) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 1.0;
  EXPECT_EQ(deliveries_under(plan, 5), 0);
}

TEST(FaultEngineTest, DropsAreCountedInStatsAndAccounting) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 1.0;
  Simulator sim(2, fault_test_machine());
  sim.set_fault_plan(plan);
  EventLog log;
  sim.set_sink(&log);
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   TaskMsg m;
                   m.fn = [](ExecContext&) {};
                   ctx.send(1, m);
                 }});
  sim.run();
  EXPECT_EQ(sim.fault_stats().messages_dropped, 1u);
  EXPECT_EQ(sim.accounting().dropped_fault, 1u);
  EXPECT_TRUE(sim.accounting().conserved());
  ASSERT_EQ(log.faults_of(FaultKind::kMessageDrop).size(), 1u);
  EXPECT_EQ(log.faults_of(FaultKind::kMessageDrop)[0].pe, 1);
  EXPECT_EQ(log.faults_of(FaultKind::kMessageDrop)[0].src_pe, 0);
}

TEST(FaultEngineTest, DuplicationDeliversTwiceWithoutRecovery) {
  FaultPlan plan;
  plan.seed = 3;
  plan.dup_prob = 1.0;
  EXPECT_EQ(deliveries_under(plan, 4), 8);
}

TEST(FaultEngineTest, DelayPostponesArrivalButDeliversEverything) {
  FaultPlan delayed;
  delayed.seed = 5;
  delayed.delay_prob = 1.0;
  delayed.delay_max = 10.0;
  double t_faulted = 0.0;
  double t_clean = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    Simulator sim(2, fault_test_machine());
    if (pass == 0) sim.set_fault_plan(delayed);
    sim.inject(0, {.fn = [&](ExecContext& ctx) {
                     TaskMsg m;
                     m.fn = [](ExecContext& c) { c.charge(0.01); };
                     ctx.send(1, m);
                   }});
    sim.run();
    (pass == 0 ? t_faulted : t_clean) = sim.time();
    EXPECT_TRUE(sim.idle());
  }
  EXPECT_GT(t_faulted, t_clean);
  EXPECT_LE(t_faulted, t_clean + 10.0);
}

TEST(FaultEngineTest, SameSeedReplaysIdentically) {
  const FaultPlan plan = FaultPlan::chaos(/*seed=*/99);
  EXPECT_EQ(deliveries_under(plan, 200), deliveries_under(plan, 200));
}

// --- PE faults -------------------------------------------------------------

TEST(FaultEngineTest, SlowdownStretchesTaskTime) {
  FaultPlan plan;
  plan.slowdowns.push_back({.pe = 0, .factor = 3.0, .from_time = 0.0});
  Simulator slow(1, fault_test_machine());
  slow.set_fault_plan(plan);
  Simulator fast(1, fault_test_machine());
  for (Simulator* s : {&slow, &fast}) {
    s->inject(0, {.fn = [](ExecContext& ctx) { ctx.charge(1.0); }});
    s->run();
  }
  EXPECT_DOUBLE_EQ(slow.pe_busy(0), 3.0 * fast.pe_busy(0));
}

TEST(FaultEngineTest, SlowdownFactorOneIsBitwiseExact) {
  // The fault path multiplies task durations; x1.0 is exact in IEEE, so a
  // unit slowdown must not perturb the schedule at all.
  FaultPlan plan;
  plan.slowdowns.push_back({.pe = 0, .factor = 1.0, .from_time = 0.0});
  auto completion = [&](bool faulted) {
    Simulator sim(2, fault_test_machine());
    if (faulted) sim.set_fault_plan(plan);
    sim.inject(0, {.fn = [](ExecContext& ctx) {
                     ctx.charge(0.371);
                     TaskMsg m;
                     m.bytes = 64;
                     m.fn = [](ExecContext& c) { c.charge(0.113); };
                     ctx.send(1, m);
                   }});
    sim.run();
    return sim.time();
  };
  EXPECT_EQ(completion(true), completion(false));
}

TEST(FaultEngineTest, FailedPeDiscardsItsQueueAndFutureArrivals) {
  FaultPlan plan;
  plan.failures.push_back({.pe = 1, .at_time = 0.5});
  Simulator sim(2, fault_test_machine());
  sim.set_fault_plan(plan);
  EventLog log;
  sim.set_sink(&log);
  int delivered = 0;
  // Sender keeps sending past the failure time; latency is 1.0 so even the
  // first message arrives after the failure at t=0.5.
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   for (int i = 0; i < 3; ++i) {
                     TaskMsg m;
                     m.fn = [&delivered](ExecContext&) { ++delivered; };
                     ctx.send(1, m);
                   }
                 }});
  sim.run();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(delivered, 0);
  EXPECT_TRUE(sim.pe_failed(1));
  EXPECT_EQ(sim.failed_pes(), std::vector<int>{1});
  EXPECT_EQ(sim.fault_stats().pe_failures, 1);
  EXPECT_EQ(sim.accounting().discarded_dead_pe, 3u);
  EXPECT_TRUE(sim.accounting().conserved());
  EXPECT_EQ(log.faults_of(FaultKind::kPeFailure).size(), 1u);
}

TEST(FaultEngineTest, ConservationHoldsUnderChaosMix) {
  const FaultPlan plan = FaultPlan::chaos(/*seed=*/1234, /*delay=*/0.5);
  Simulator sim(4, fault_test_machine());
  sim.set_fault_plan(plan);
  int delivered = 0;
  for (int pe = 0; pe < 4; ++pe) {
    sim.inject(pe, {.fn = [&, pe](ExecContext& ctx) {
                      for (int i = 0; i < 50; ++i) {
                        TaskMsg m;
                        m.bytes = 32;
                        m.fn = [&delivered](ExecContext&) { ++delivered; };
                        ctx.send((pe + 1 + i) % 4, m);
                      }
                    }});
  }
  sim.run();
  EXPECT_TRUE(sim.idle());
  const MessageAccounting& a = sim.accounting();
  EXPECT_TRUE(a.conserved());
  EXPECT_EQ(a.pending(), 0u);
  EXPECT_GT(sim.fault_stats().injected(), 0u);
  // Every message is either executed or attributably removed.
  EXPECT_EQ(a.executed + a.dropped_fault + a.discarded_dead_pe,
            a.offered + a.duplicated);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered) + 4u /* bootstrap tasks */,
            a.executed);
}

// --- trace integration -----------------------------------------------------

TEST(FaultTraceTest, TimelineMarksFailuresAndInjectedFaults) {
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_prob = 1.0;
  plan.failures.push_back({.pe = 1, .at_time = 0.8});
  Simulator sim(2, fault_test_machine());
  sim.set_fault_plan(plan);
  EventLog log;
  sim.set_sink(&log);
  sim.inject(0, {.fn = [](ExecContext& ctx) {
                   ctx.charge(1.0);
                   TaskMsg m;
                   m.fn = [](ExecContext&) {};
                   ctx.send(1, m);
                 }});
  sim.run();
  TimelineOptions opts;
  opts.num_pes = 2;
  const std::string view = render_timeline(log, sim.entries(), opts);
  EXPECT_NE(view.find('X'), std::string::npos);
  EXPECT_NE(view.find("X pe-failure"), std::string::npos);
}

TEST(FaultTraceTest, ResilienceTableReportsCounters) {
  FaultStats f;
  f.messages_dropped = 3;
  f.messages_duplicated = 2;
  f.pe_failures = 1;
  ReliableStats r;
  r.retries = 5;
  r.duplicates_suppressed = 2;
  const ResilienceStats s =
      resilience_stats(f, &r, /*checkpoints_taken=*/4, /*restarts=*/1,
                       /*restart_latency=*/0.25);
  EXPECT_EQ(s.faults_injected(), 6u);
  const std::string table = render_resilience(s);
  EXPECT_NE(table.find("faults injected"), std::string::npos);
  EXPECT_NE(table.find("retries"), std::string::npos);
  EXPECT_NE(table.find("checkpoints taken"), std::string::npos);
  EXPECT_NE(table.find("restart latency"), std::string::npos);
  EXPECT_NE(table.find("0.250000"), std::string::npos);
}

}  // namespace
}  // namespace scalemd
