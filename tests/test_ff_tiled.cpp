#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/parallel_sim.hpp"
#include "ff/nonbonded.hpp"
#include "ff/nonbonded_tiled.hpp"
#include "gen/presets.hpp"
#include "gen/water_box.hpp"
#include "seq/engine.hpp"
#include "topo/exclusions.hpp"

namespace scalemd {
namespace {

/// Relative tolerance for tiled-vs-scalar comparisons. The kernels perform
/// the same per-pair arithmetic; differences come only from accumulator
/// association and the premultiplied Coulomb charge, both far below this.
constexpr double kRelTol = 1e-9;

void expect_close(double a, double b, const char* what) {
  EXPECT_NEAR(a, b, kRelTol * std::max(1.0, std::max(std::fabs(a), std::fabs(b))))
      << what;
}

void expect_energy_close(const EnergyTerms& a, const EnergyTerms& b) {
  expect_close(a.lj, b.lj, "lj");
  expect_close(a.elec, b.elec, "elec");
}

void expect_forces_close(std::span<const Vec3> a, std::span<const Vec3> b) {
  ASSERT_EQ(a.size(), b.size());
  // Tolerance relative to the largest force in the system: clashy generated
  // configurations produce large canceling pair forces.
  double scale = 1.0;
  for (const Vec3& f : b) scale = std::max(scale, norm(f));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(norm(a[i] - b[i]), 0.0, kRelTol * scale) << "atom " << i;
  }
}

/// Per-atom data the direct kernel entry points need, extracted the same way
/// the engines do it.
struct KernelSystem {
  explicit KernelSystem(const Molecule& m, NonbondedOptions opts = {})
      : mol(m), excl(ExclusionTable::build(m)) {
    for (const Atom& a : mol.atoms()) {
      charges.push_back(a.charge);
      lj_types.push_back(a.lj_type);
    }
    nb = opts;
    ctx = std::make_unique<NonbondedContext>(mol.params, excl, charges, lj_types, nb);
  }

  Molecule mol;
  ExclusionTable excl;
  std::vector<double> charges;
  std::vector<int> lj_types;
  NonbondedOptions nb;
  std::unique_ptr<NonbondedContext> ctx;
};

// ---------------------------------------------------------------------------
// Direct kernel equivalence: the tiled entry points against their scalar
// counterparts on a bonded chain (exclusions + 1-4 pairs present).
// ---------------------------------------------------------------------------

TEST(TiledKernelTest, SelfMatchesScalarOnBondedChain) {
  NonbondedOptions opts;
  opts.cutoff = 7.5;
  opts.switch_dist = 6.5;
  KernelSystem sys(small_solvated_chain(500, 11), opts);
  const int n = sys.mol.atom_count();
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  const auto pos = sys.mol.positions();

  std::vector<Vec3> f_ref(static_cast<std::size_t>(n));
  std::vector<Vec3> f_tiled(static_cast<std::size_t>(n));
  WorkCounters w_ref, w_tiled;
  const EnergyTerms e_ref = nonbonded_self(*sys.ctx, idx, pos, f_ref, w_ref);
  TiledWorkspace ws;
  const EnergyTerms e_tiled =
      nonbonded_self_tiled(*sys.ctx, idx, pos, f_tiled, w_tiled, ws);

  expect_energy_close(e_tiled, e_ref);
  expect_forces_close(f_tiled, f_ref);
  EXPECT_EQ(w_tiled.pairs_tested, w_ref.pairs_tested);
  EXPECT_EQ(w_tiled.pairs_computed, w_ref.pairs_computed);
  EXPECT_GT(w_tiled.pairs_computed, 0u);
}

TEST(TiledKernelTest, AbMatchesScalarAcrossBondedSplit) {
  // Split the chain mid-molecule so bonds (full exclusions) and 1-4 pairs
  // cross the a/b boundary — the mask build must translate global exclusion
  // lists into the partner set's local bits.
  NonbondedOptions opts;
  opts.cutoff = 7.5;
  opts.switch_dist = 6.5;
  KernelSystem sys(small_solvated_chain(500, 13), opts);
  const int n = sys.mol.atom_count();
  const int half = n / 2 + 1;  // odd split, mid-residue
  std::vector<int> ia, ib;
  for (int i = 0; i < n; ++i) (i < half ? ia : ib).push_back(i);
  std::vector<Vec3> pa, pb;
  for (int i : ia) pa.push_back(sys.mol.positions()[static_cast<std::size_t>(i)]);
  for (int i : ib) pb.push_back(sys.mol.positions()[static_cast<std::size_t>(i)]);

  std::vector<Vec3> fa_ref(pa.size()), fb_ref(pb.size());
  std::vector<Vec3> fa_t(pa.size()), fb_t(pb.size());
  WorkCounters w_ref, w_tiled;
  const EnergyTerms e_ref =
      nonbonded_ab(*sys.ctx, ia, pa, fa_ref, ib, pb, fb_ref, w_ref);
  TiledWorkspace ws;
  const EnergyTerms e_tiled =
      nonbonded_ab_tiled(*sys.ctx, ia, pa, fa_t, ib, pb, fb_t, w_tiled, ws);

  expect_energy_close(e_tiled, e_ref);
  expect_forces_close(fa_t, fa_ref);
  expect_forces_close(fb_t, fb_ref);
  EXPECT_EQ(w_tiled.pairs_tested, w_ref.pairs_tested);
  EXPECT_EQ(w_tiled.pairs_computed, w_ref.pairs_computed);
}

TEST(TiledKernelTest, RangePartitionSumsToFullEvaluation) {
  // Row-range invocations (the unit ParallelSim's split computes use) must
  // tile the full result exactly.
  NonbondedOptions opts;
  opts.cutoff = 6.5;
  opts.switch_dist = 5.5;
  KernelSystem sys(make_water_box({14, 14, 14}, 7), opts);
  const int n = sys.mol.atom_count();
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  const auto pos = sys.mol.positions();

  TiledWorkspace ws;
  std::vector<Vec3> f_full(static_cast<std::size_t>(n));
  WorkCounters w_full;
  const EnergyTerms e_full =
      nonbonded_self_tiled(*sys.ctx, idx, pos, f_full, w_full, ws);

  std::vector<Vec3> f_sum(static_cast<std::size_t>(n));
  WorkCounters w_sum;
  EnergyTerms e_sum;
  const std::size_t un = static_cast<std::size_t>(n);
  for (std::size_t b = 0; b < un; b += 37) {
    e_sum += nonbonded_self_range_tiled(*sys.ctx, idx, pos, f_sum, b,
                                        std::min(un, b + 37), w_sum, ws);
  }

  EXPECT_EQ(w_sum.pairs_tested, w_full.pairs_tested);
  EXPECT_EQ(w_sum.pairs_computed, w_full.pairs_computed);
  expect_energy_close(e_sum, e_full);
  expect_forces_close(f_sum, f_full);
}

TEST(TiledKernelTest, ThreadedRangeMatchesSerialTiled) {
  NonbondedOptions opts;
  opts.cutoff = 6.5;
  opts.switch_dist = 5.5;
  KernelSystem sys(small_solvated_chain(700, 17), opts);
  const int n = sys.mol.atom_count();
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  const auto pos = sys.mol.positions();

  TiledWorkspace ws;
  std::vector<Vec3> f_serial(static_cast<std::size_t>(n));
  WorkCounters w_serial;
  const EnergyTerms e_serial =
      nonbonded_self_tiled(*sys.ctx, idx, pos, f_serial, w_serial, ws);

  ThreadPool pool(3);
  TiledThreadWorkspace tws;
  std::vector<Vec3> f_mt(static_cast<std::size_t>(n));
  WorkCounters w_mt;
  const EnergyTerms e_mt = nonbonded_self_range_tiled_mt(
      *sys.ctx, idx, pos, f_mt, 0, static_cast<std::size_t>(n), w_mt, tws, pool);

  EXPECT_EQ(w_mt.pairs_tested, w_serial.pairs_tested);
  EXPECT_EQ(w_mt.pairs_computed, w_serial.pairs_computed);
  expect_energy_close(e_mt, e_serial);
  expect_forces_close(f_mt, f_serial);
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: all kernels, both evaluation paths.
// ---------------------------------------------------------------------------

struct EngineResult {
  EnergyTerms energy;
  WorkCounters work;
  std::vector<Vec3> forces;
};

EngineResult run_engine(const Molecule& m, NonbondedKernel kernel, bool pairlist,
                        int threads = 3) {
  EngineOptions opts;
  opts.nonbonded.cutoff = 7.5;
  opts.nonbonded.switch_dist = 6.5;
  opts.nonbonded.kernel = kernel;
  opts.nonbonded.threads = threads;
  opts.use_pairlist = pairlist;
  SequentialEngine eng(m, opts);
  return {eng.potential(), eng.work(),
          {eng.forces().begin(), eng.forces().end()}};
}

void expect_equivalent(const EngineResult& got, const EngineResult& ref) {
  expect_energy_close(got.energy, ref.energy);
  EXPECT_EQ(got.work.pairs_tested, ref.work.pairs_tested);
  EXPECT_EQ(got.work.pairs_computed, ref.work.pairs_computed);
  expect_forces_close(got.forces, ref.forces);
}

/// One cell of the equivalence matrix: a kernel variant evaluated through one
/// engine path, always checked against the scalar kernel on the *same* path
/// and the scalar cell-list evaluation (the golden reference configuration).
struct MatrixCase {
  NonbondedKernel kernel;
  bool pairlist;
  int threads;
};

std::string matrix_case_name(const testing::TestParamInfo<MatrixCase>& info) {
  std::string name;
  for (const char* p = kernel_name(info.param.kernel); *p != '\0'; ++p) {
    name += std::isalnum(static_cast<unsigned char>(*p)) ? *p : '_';
  }
  name += info.param.pairlist ? "_verlet" : "_cell";
  if (info.param.threads > 0) name += "_t" + std::to_string(info.param.threads);
  return name;
}

class KernelMatrixTest : public testing::TestWithParam<MatrixCase> {
 protected:
  /// Full equivalence (energies, forces, both work counters) against the
  /// scalar kernel on the same evaluation path — pairs_tested is a property
  /// of the path (cell sweep vs Verlet list), so only same-path runs share
  /// it. Across paths, the physics must still agree: pairs_computed,
  /// energies and forces are checked against the scalar cell-list reference.
  void check_case(const Molecule& m, const MatrixCase& c) {
    const EngineResult got = run_engine(m, c.kernel, c.pairlist, c.threads);
    expect_equivalent(got, run_engine(m, NonbondedKernel::kScalar, c.pairlist));
    const EngineResult cell_ref = run_engine(m, NonbondedKernel::kScalar, false);
    EXPECT_EQ(got.work.pairs_computed, cell_ref.work.pairs_computed);
    expect_energy_close(got.energy, cell_ref.energy);
    expect_forces_close(got.forces, cell_ref.forces);
  }
};

TEST_P(KernelMatrixTest, AgreesWithScalarReferenceOnWaterBox) {
  check_case(make_water_box({22, 22, 22}, 3), GetParam());
}

TEST_P(KernelMatrixTest, AgreesWithScalarReferenceOnSolvatedChain) {
  check_case(small_solvated_chain(1200, 19), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllPaths, KernelMatrixTest,
    testing::Values(MatrixCase{NonbondedKernel::kScalar, true, 0},
                    MatrixCase{NonbondedKernel::kTiled, false, 0},
                    MatrixCase{NonbondedKernel::kTiled, true, 0},
                    MatrixCase{NonbondedKernel::kTiledThreads, false, 2},
                    MatrixCase{NonbondedKernel::kTiledThreads, true, 2},
                    MatrixCase{NonbondedKernel::kTiledThreads, false, 4},
                    MatrixCase{NonbondedKernel::kTiledThreads, true, 4}),
    matrix_case_name);

TEST(TiledEngineTest, ThreadedEvaluationIsBitwiseDeterministic) {
  // Static schedule + ordered reduction: two engines with the same thread
  // count must produce bit-identical energies and forces, step after step.
  const Molecule m = small_solvated_chain(900, 41);
  auto make = [&] {
    EngineOptions opts;
    opts.nonbonded.cutoff = 7.5;
    opts.nonbonded.switch_dist = 6.5;
    opts.nonbonded.kernel = NonbondedKernel::kTiledThreads;
    opts.nonbonded.threads = 3;
    return SequentialEngine(m, opts);
  };
  SequentialEngine a = make();
  SequentialEngine b = make();
  for (int s = 0; s < 3; ++s) {
    const EnergyTerms& ea = a.potential();
    const EnergyTerms& eb = b.potential();
    EXPECT_EQ(ea.lj, eb.lj) << "step " << s;
    EXPECT_EQ(ea.elec, eb.elec) << "step " << s;
    ASSERT_EQ(a.forces().size(), b.forces().size());
    EXPECT_EQ(std::memcmp(a.forces().data(), b.forces().data(),
                          a.forces().size() * sizeof(Vec3)),
              0)
        << "step " << s;
    a.step();
    b.step();
  }
}

// ---------------------------------------------------------------------------
// Parallel core: numeric computes running the tiled kernels.
// ---------------------------------------------------------------------------

TEST(TiledCoreTest, ParallelSimNumericForcesMatchAcrossKernels) {
  Molecule m = small_solvated_chain(1000, 31);
  m.suggested_patch_size = 8.0;
  NonbondedOptions nb;
  nb.cutoff = 7.5;
  nb.switch_dist = 6.5;
  m.assign_velocities(300.0, 77);

  auto forces_with = [&](NonbondedKernel kernel) {
    NonbondedOptions k = nb;
    k.kernel = kernel;
    k.threads = 2;
    const Workload wl(m, MachineModel::asci_red(), k);
    ParallelOptions opts;
    opts.num_pes = 5;
    opts.numeric = true;
    opts.dt_fs = 0.5;
    ParallelSim sim(wl, opts);
    sim.run_cycle(1);
    return sim.gather_forces();
  };

  const auto ref = forces_with(NonbondedKernel::kScalar);
  expect_forces_close(forces_with(NonbondedKernel::kTiled), ref);
  expect_forces_close(forces_with(NonbondedKernel::kTiledThreads), ref);
}

// ---------------------------------------------------------------------------
// Option helpers.
// ---------------------------------------------------------------------------

TEST(TiledKernelTest, KernelNamesRoundTrip) {
  for (NonbondedKernel k : {NonbondedKernel::kScalar, NonbondedKernel::kTiled,
                            NonbondedKernel::kTiledThreads}) {
    NonbondedKernel parsed{};
    EXPECT_TRUE(kernel_from_name(kernel_name(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  NonbondedKernel parsed = NonbondedKernel::kScalar;
  EXPECT_TRUE(kernel_from_name("tiled-threads", parsed));
  EXPECT_EQ(parsed, NonbondedKernel::kTiledThreads);
  EXPECT_FALSE(kernel_from_name("vectorized", parsed));
}

}  // namespace
}  // namespace scalemd
