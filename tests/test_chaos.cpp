// Chaos soak: the waterbox preset run on the simulated machine under seeded
// fault plans, asserting the resilient runtime (dedup + retry + checkpoint /
// restart + evacuation) recovers to the fault-free trajectory and that the
// physics-invariant checker stays clean. These tests run whole parallel
// simulations repeatedly, so they carry the `chaos` ctest label instead of
// `unit` and CI schedules them as a separate (sanitized) soak job.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/invariants.hpp"
#include "core/parallel_sim.hpp"
#include "des/fault.hpp"
#include "gen/water_box.hpp"
#include "seq/engine.hpp"
#include "trace/audit.hpp"
#include "trace/event_log.hpp"

namespace scalemd {
namespace {

constexpr int kCycles = 3;
constexpr int kStepsPerCycle = 2;

/// Waterbox preset (the golden system) shared across the soak: built once,
/// every run re-seeds from the same immutable workload.
class ChaosFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mol_ = new Molecule(make_water_box({16.0, 16.0, 16.0}, /*seed=*/11));
    mol_->assign_velocities(300.0, /*seed=*/101);
    mol_->suggested_patch_size = 8.0;
    nb_.cutoff = 6.5;
    nb_.switch_dist = 5.5;
    workload_ = new Workload(*mol_, MachineModel::asci_red(), nb_);
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete mol_;
    workload_ = nullptr;
    mol_ = nullptr;
  }

  static ParallelOptions base_options() {
    ParallelOptions opts;
    opts.num_pes = 8;
    opts.numeric = true;
    opts.dt_fs = 1.0;
    return opts;
  }

  struct RunResult {
    std::vector<Vec3> positions;
    std::vector<Vec3> velocities;
    double end_time = 0.0;
    int checkpoints = 0;
    int restarts = 0;
    double restart_latency = 0.0;
    bool complete = false;
    ResilienceStats resilience;
    ViolationLog violations;
    std::uint64_t checks_run = 0;
    std::size_t tasks_traced = 0;
    std::size_t messages_traced = 0;
  };

  static RunResult run(const ParallelOptions& opts, int cycles = kCycles,
                       int steps = kStepsPerCycle) {
    ParallelSim sim(*workload_, opts);
    EventLog log;
    sim.attach_sink(&log);
    InvariantOptions iopts;
    iopts.check_energy = false;  // a handful of steps; drift bound is for runs
    InvariantChecker checker(iopts);
    checker.attach(sim);
    for (int c = 0; c < cycles; ++c) sim.run_cycle(steps);

    RunResult r;
    r.positions = sim.gather_positions();
    r.velocities = sim.gather_velocities();
    r.end_time = sim.sim().time();
    r.checkpoints = sim.checkpoints_taken();
    r.restarts = sim.restarts();
    r.restart_latency = sim.restart_latency();
    r.complete = sim.last_cycle_complete();
    r.resilience = resilience_stats(
        sim.sim().fault_stats(),
        sim.reliable() != nullptr ? &sim.reliable()->stats() : nullptr,
        sim.checkpoints_taken(), sim.restarts(), sim.restart_latency());
    r.violations = checker.log();
    r.checks_run = checker.checks_run();
    r.tasks_traced = log.tasks().size();
    r.messages_traced = log.messages().size();
    return r;
  }

  /// Max relative position deviation against a reference run.
  static double max_rel_deviation(const std::vector<Vec3>& got,
                                  const std::vector<Vec3>& ref) {
    double scale = 1.0;
    for (const Vec3& v : ref) {
      scale = std::max({scale, std::fabs(v.x), std::fabs(v.y), std::fabs(v.z)});
    }
    double worst = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      worst = std::max(worst, norm(got[i] - ref[i]) / scale);
    }
    return worst;
  }

  static Molecule* mol_;
  static NonbondedOptions nb_;
  static Workload* workload_;
};

Molecule* ChaosFixture::mol_ = nullptr;
NonbondedOptions ChaosFixture::nb_;
Workload* ChaosFixture::workload_ = nullptr;

TEST_F(ChaosFixture, FaultFreeRecoveryLayerIsBitwiseNoOp) {
  // Arming the reliable layer on a fault-free machine must not change a
  // single event: same trace sizes, same virtual end time (bitwise), same
  // state (bitwise). This is the zero-overhead guarantee of the pass-through.
  ParallelOptions plain = base_options();
  ParallelOptions armed = base_options();
  armed.reliable = true;
  const RunResult a = run(plain);
  const RunResult b = run(armed);
  EXPECT_EQ(a.end_time, b.end_time);  // bitwise, not NEAR
  EXPECT_EQ(a.tasks_traced, b.tasks_traced);
  EXPECT_EQ(a.messages_traced, b.messages_traced);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i].x, b.positions[i].x);
    EXPECT_EQ(a.positions[i].y, b.positions[i].y);
    EXPECT_EQ(a.positions[i].z, b.positions[i].z);
  }
  EXPECT_EQ(b.resilience.retries, 0u);
  EXPECT_EQ(b.resilience.faults_injected(), 0u);
}

TEST_F(ChaosFixture, FaultFreeCheckpointsAreStateInvisibleAndAudited) {
  // Checkpoints add (modeled) snapshot work, so timing shifts — but state
  // must stay bitwise identical, and the audit must report the overhead.
  ParallelOptions plain = base_options();
  ParallelOptions ckpt = base_options();
  ckpt.reliable = true;
  ckpt.checkpoint_every = 1;
  const RunResult a = run(plain);
  const RunResult b = run(ckpt);
  EXPECT_EQ(b.checkpoints, kCycles);
  EXPECT_EQ(b.restarts, 0);
  EXPECT_GE(b.end_time, a.end_time);  // snapshot cost is the only difference
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i].x, b.positions[i].x);
    EXPECT_EQ(a.positions[i].y, b.positions[i].y);
    EXPECT_EQ(a.positions[i].z, b.positions[i].z);
  }
  const std::string table = render_resilience(b.resilience);
  EXPECT_NE(table.find("checkpoints taken"), std::string::npos);
  EXPECT_TRUE(b.violations.empty());
}

TEST_F(ChaosFixture, MessageChaosRecoversBitwise) {
  // Drops + duplicates + delays with dedup and retry: placement never
  // changes, the canonical force accumulation is schedule-independent, so
  // the recovered trajectory is bit-identical to the fault-free one.
  ParallelOptions plain = base_options();
  const RunResult clean = run(plain);
  ParallelOptions chaos = base_options();
  chaos.reliable = true;
  chaos.checkpoint_every = 1;
  chaos.fault = FaultPlan::chaos(/*seed=*/7, /*delay=*/2e-4);
  const RunResult r = run(chaos);
  ASSERT_TRUE(r.complete);
  EXPECT_TRUE(r.violations.empty()) << r.violations.render();
  EXPECT_GT(r.checks_run, 0u);
  EXPECT_GT(r.resilience.faults_injected(), 0u);
  EXPECT_GT(r.resilience.retries, 0u);
  ASSERT_EQ(r.positions.size(), clean.positions.size());
  for (std::size_t i = 0; i < r.positions.size(); ++i) {
    EXPECT_EQ(r.positions[i].x, clean.positions[i].x);
    EXPECT_EQ(r.positions[i].y, clean.positions[i].y);
    EXPECT_EQ(r.positions[i].z, clean.positions[i].z);
  }
}

TEST_F(ChaosFixture, PeFailureRestartsFromCheckpointAndEvacuates) {
  // Kill one PE mid-run: the stalled cycle must restore from the last
  // coordinated checkpoint, evacuate the dead PE's patches and computes,
  // replay, and end with the fault-free physics (placement changes, so the
  // comparison is tolerance-based: different summation grouping).
  const RunResult clean = run(base_options());
  // Aim the failure at the middle of the run using the clean run's clock.
  const double t_fail = clean.end_time * 0.5;

  ParallelOptions chaos = base_options();
  chaos.reliable = true;
  chaos.checkpoint_every = 1;
  chaos.fault.seed = 13;
  chaos.fault.drop_prob = 0.01;
  chaos.fault.failures.push_back({.pe = 3, .at_time = t_fail});
  const RunResult r = run(chaos);

  ASSERT_TRUE(r.complete);
  EXPECT_TRUE(r.violations.empty()) << r.violations.render();
  EXPECT_EQ(r.resilience.pe_failures, 1);
  EXPECT_GE(r.restarts, 1);
  EXPECT_GT(r.restart_latency, 0.0);
  EXPECT_GE(r.checkpoints, 1);
  ASSERT_EQ(r.positions.size(), clean.positions.size());
  EXPECT_LT(max_rel_deviation(r.positions, clean.positions), 1e-9);
  EXPECT_LT(max_rel_deviation(r.velocities, clean.velocities), 1e-9);
}

TEST_F(ChaosFixture, ChaosTrajectoryMatchesSequentialReference) {
  // The recovered parallel run must still track the sequential engine (the
  // generator of the golden references) within the same tolerance the
  // fault-free parallel tests use.
  EngineOptions eopts;
  eopts.nonbonded = nb_;
  eopts.dt_fs = 1.0;
  SequentialEngine seq(*mol_, eopts);
  for (int s = 0; s < kCycles * kStepsPerCycle; ++s) seq.step();

  ParallelOptions chaos = base_options();
  chaos.reliable = true;
  chaos.checkpoint_every = 1;
  chaos.fault = FaultPlan::chaos(/*seed=*/41, /*delay=*/2e-4);
  const RunResult r = run(chaos);
  ASSERT_TRUE(r.complete);
  const std::vector<Vec3> ref(seq.positions().begin(), seq.positions().end());
  ASSERT_EQ(r.positions.size(), ref.size());
  EXPECT_LT(max_rel_deviation(r.positions, ref), 1e-6);
}

TEST_F(ChaosFixture, SeededSoakCompletesCleanAcrossPlans) {
  // The CI soak: several seeded chaos mixes, each with a mid-run PE failure,
  // all of which must complete, recover and keep the invariants green.
  const double t_end = run(base_options()).end_time;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ParallelOptions chaos = base_options();
    chaos.reliable = true;
    chaos.checkpoint_every = 1;
    chaos.fault = FaultPlan::chaos(seed, /*delay=*/2e-4);
    chaos.fault.failures.push_back(
        {.pe = static_cast<int>(seed % 8), .at_time = t_end * 0.4});
    const RunResult r = run(chaos);
    EXPECT_TRUE(r.complete) << "seed " << seed;
    EXPECT_TRUE(r.violations.empty())
        << "seed " << seed << "\n"
        << r.violations.render();
    EXPECT_EQ(r.resilience.pe_failures, 1) << "seed " << seed;
    EXPECT_GE(r.restarts, 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace scalemd
