#include <gtest/gtest.h>

#include <cstdlib>

#include "core/baselines.hpp"
#include "core/driver.hpp"
#include "gen/presets.hpp"

namespace scalemd {
namespace {

/// Small shared workload (bR-class is quick to build).
class DriverFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mol_ = new Molecule(br_like());
    wl_ = new Workload(*mol_, MachineModel::asci_red());
  }
  static void TearDownTestSuite() {
    delete wl_;
    delete mol_;
    wl_ = nullptr;
    mol_ = nullptr;
  }
  static Molecule* mol_;
  static Workload* wl_;
};

Molecule* DriverFixture::mol_ = nullptr;
Workload* DriverFixture::wl_ = nullptr;

TEST_F(DriverFixture, ScalingRowsAreConsistent) {
  BenchmarkConfig cfg;
  cfg.pe_counts = {1, 4, 16};
  const auto rows = run_scaling(*wl_, cfg);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].pes, 1);
  EXPECT_DOUBLE_EQ(rows[0].speedup, 1.0);
  // Speedup and GFLOPS both derive from the step time.
  for (const ScalingRow& r : rows) {
    EXPECT_NEAR(r.speedup, rows[0].seconds_per_step / r.seconds_per_step, 1e-9);
    EXPECT_GT(r.gflops, 0.0);
  }
  EXPECT_GT(rows[2].speedup, rows[1].speedup);
}

TEST_F(DriverFixture, SpeedupBaseNormalization) {
  BenchmarkConfig cfg;
  cfg.pe_counts = {2, 8};
  cfg.speedup_base = 2.0;
  const auto rows = run_scaling(*wl_, cfg);
  EXPECT_DOUBLE_EQ(rows[0].speedup, 2.0);
}

TEST_F(DriverFixture, FlopsEstimatePositiveAndDominatedByPairs) {
  const WorkCounters total = wl_->work.total();
  const double flops = estimate_flops_per_step(total);
  EXPECT_GT(flops, 75.0 * static_cast<double>(total.pairs_computed));
  EXPECT_LT(flops, 200.0 * static_cast<double>(total.pairs_computed));
}

TEST_F(DriverFixture, RenderScalingContainsRows) {
  BenchmarkConfig cfg;
  cfg.pe_counts = {1, 4};
  const auto rows = run_scaling(*wl_, cfg);
  const std::string with = render_scaling(rows, true);
  EXPECT_NE(with.find("GFLOPS"), std::string::npos);
  const std::string without = render_scaling(rows, false);
  EXPECT_EQ(without.find("GFLOPS"), std::string::npos);
  EXPECT_NE(without.find("Processors"), std::string::npos);
}

TEST(DriverTest, AsciLadderClipping) {
  const auto full = asci_ladder(1, 2048);
  EXPECT_EQ(full.front(), 1);
  EXPECT_EQ(full.back(), 2048);
  const auto mid = asci_ladder(2, 256);
  EXPECT_EQ(mid.front(), 2);
  EXPECT_EQ(mid.back(), 256);
}

TEST(DriverTest, BenchScaleEnv) {
  unsetenv("SCALEMD_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(bench_scale_from_env(), 1.0);
  setenv("SCALEMD_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(bench_scale_from_env(), 0.5);
  setenv("SCALEMD_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(bench_scale_from_env(), 1.0);
  unsetenv("SCALEMD_BENCH_SCALE");
}

TEST_F(DriverFixture, AtomDecompositionSaturates) {
  const MachineModel m = MachineModel::asci_red();
  const double t1 = atom_decomposition_step(*wl_, 1, m);
  const double t16 = atom_decomposition_step(*wl_, 16, m);
  const double t256 = atom_decomposition_step(*wl_, 256, m);
  EXPECT_LT(t16, t1);          // scales at small P...
  EXPECT_GT(t256, t16 * 0.5);  // ...but stops: communication floor.
}

TEST_F(DriverFixture, ForceDecompositionBeatsAtomDecompositionAtScale) {
  const MachineModel m = MachineModel::asci_red();
  const double ad = atom_decomposition_step(*wl_, 64, m);
  const double fd = force_decomposition_step(*wl_, 64, m);
  EXPECT_LT(fd, ad);
}

TEST_F(DriverFixture, HybridBeatsAtomDecompositionAtScale) {
  // On this small system with compute granted perfect balance, force
  // decomposition stays competitive through ~64 PEs (the paper concedes FD
  // gives "reasonable speedups on medium-size computers"); the hybrid's win
  // over FD at 1024 PEs is exercised on ApoA-I by
  // bench_ablation_decomposition. Atom decomposition must lose here already.
  const MachineModel m = MachineModel::asci_red();
  ParallelOptions opts;
  opts.num_pes = 64;
  opts.machine = m;
  ParallelSim sim(*wl_, opts);
  const double hybrid = sim.run_benchmark(2, 3);
  EXPECT_LT(hybrid, atom_decomposition_step(*wl_, 64, m));
}

TEST_F(DriverFixture, BaselinesMatchSequentialAtOnePe) {
  const MachineModel m = MachineModel::asci_red();
  const double seq = work_cost(wl_->work.total(), m);
  EXPECT_NEAR(atom_decomposition_step(*wl_, 1, m), seq, 0.05 * seq);
}

}  // namespace
}  // namespace scalemd
