#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "topo/exclusions.hpp"
#include "topo/molecule.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

// Property-based checks of the exclusion table: for randomly generated small
// bond graphs, the CSR table must agree with an independent breadth-first
// reference and satisfy the structural invariants every kernel relies on
// (symmetry, 1-2/1-3 coverage, 1-4 disjointness, sorted lists).

/// A random connected bond graph: a spanning tree over `n` atoms plus a few
/// extra edges (rings), which exercises the "1-4 only if not closer" rule.
Molecule random_molecule(int n, int extra_edges, Rng& rng) {
  Molecule m;
  m.box = {100.0, 100.0, 100.0};
  const int lj = m.params.add_lj_type(0.1, 1.5);
  const int bp = m.params.add_bond_param(300.0, 1.5);
  m.params.finalize();
  for (int i = 0; i < n; ++i) {
    m.add_atom({12.0, 0.0, lj}, {1.0 + static_cast<double>(i), 1.0, 1.0});
  }
  std::set<std::pair<int, int>> edges;
  auto add_edge = [&](int a, int b) {
    if (a == b) return false;
    if (!edges.insert({std::min(a, b), std::max(a, b)}).second) return false;
    m.add_bond(a, b, bp);
    return true;
  };
  for (int i = 1; i < n; ++i) {
    add_edge(i, static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(i))));
  }
  for (int tries = 0; extra_edges > 0 && tries < 50 * extra_edges; ++tries) {
    const int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
    if (add_edge(a, b)) --extra_edges;
  }
  return m;
}

/// Bond-graph distance of every pair up to depth 3 (the exclusion horizon),
/// computed the slow obvious way.
std::map<std::pair<int, int>, int> bond_distances(const Molecule& m) {
  const int n = m.atom_count();
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const Bond& b : m.bonds()) {
    adj[static_cast<std::size_t>(b.a)].push_back(b.b);
    adj[static_cast<std::size_t>(b.b)].push_back(b.a);
  }
  std::map<std::pair<int, int>, int> dist;
  for (int s = 0; s < n; ++s) {
    std::vector<int> d(static_cast<std::size_t>(n), -1);
    std::queue<int> q;
    d[static_cast<std::size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      if (d[static_cast<std::size_t>(u)] == 3) continue;
      for (int v : adj[static_cast<std::size_t>(u)]) {
        if (d[static_cast<std::size_t>(v)] < 0) {
          d[static_cast<std::size_t>(v)] = d[static_cast<std::size_t>(u)] + 1;
          q.push(v);
        }
      }
    }
    for (int t = s + 1; t < n; ++t) {
      if (d[static_cast<std::size_t>(t)] > 0) dist[{s, t}] = d[static_cast<std::size_t>(t)];
    }
  }
  return dist;
}

TEST(ExclusionPropertyTest, MatchesBfsReferenceOnRandomGraphs) {
  Rng rng(0x5eed);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 4 + static_cast<int>(rng.uniform_index(30));
    const int extra = static_cast<int>(rng.uniform_index(4));
    const Molecule m = random_molecule(n, extra, rng);
    const ExclusionTable table = ExclusionTable::build(m);
    const auto dist = bond_distances(m);

    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) {
          EXPECT_EQ(table.check(i, j), ExclusionKind::kFull);
          continue;
        }
        const auto it = dist.find({std::min(i, j), std::max(i, j)});
        const int d = (it == dist.end()) ? 99 : it->second;
        ExclusionKind want = ExclusionKind::kNone;
        if (d <= 2) {
          want = ExclusionKind::kFull;
        } else if (d == 3) {
          want = ExclusionKind::kModified14;
        }
        EXPECT_EQ(table.check(i, j), want)
            << "trial " << trial << " pair (" << i << "," << j
            << ") bond distance " << d;
      }
    }
  }
}

TEST(ExclusionPropertyTest, TableIsSymmetric) {
  Rng rng(0xabcd);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5 + static_cast<int>(rng.uniform_index(25));
    const Molecule m = random_molecule(n, 3, rng);
    const ExclusionTable table = ExclusionTable::build(m);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        EXPECT_EQ(table.check(i, j), table.check(j, i))
            << "pair (" << i << "," << j << ")";
      }
    }
  }
}

TEST(ExclusionPropertyTest, DirectNeighborsAndOneThreePairsAreExcluded) {
  Rng rng(0xf00d);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 6 + static_cast<int>(rng.uniform_index(20));
    const Molecule m = random_molecule(n, 2, rng);
    const ExclusionTable table = ExclusionTable::build(m);

    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    for (const Bond& b : m.bonds()) {
      adj[static_cast<std::size_t>(b.a)].push_back(b.b);
      adj[static_cast<std::size_t>(b.b)].push_back(b.a);
      // 1-2 pairs are always fully excluded.
      EXPECT_EQ(table.check(b.a, b.b), ExclusionKind::kFull);
    }
    // Every two-bond path endpoint pair (1-3) is fully excluded.
    for (int mid = 0; mid < n; ++mid) {
      const auto& nb = adj[static_cast<std::size_t>(mid)];
      for (std::size_t x = 0; x < nb.size(); ++x) {
        for (std::size_t y = x + 1; y < nb.size(); ++y) {
          EXPECT_EQ(table.check(nb[x], nb[y]), ExclusionKind::kFull)
              << "1-3 pair through atom " << mid;
        }
      }
    }
  }
}

TEST(ExclusionPropertyTest, ModifiedPairsAreDisjointFromFullExclusions) {
  Rng rng(0x1234);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 6 + static_cast<int>(rng.uniform_index(24));
    const Molecule m = random_molecule(n, 3, rng);
    const ExclusionTable table = ExclusionTable::build(m);

    for (int i = 0; i < n; ++i) {
      const auto full = table.excluded(i);
      const auto mod = table.modified(i);
      EXPECT_TRUE(std::is_sorted(full.begin(), full.end()));
      EXPECT_TRUE(std::is_sorted(mod.begin(), mod.end()));
      std::vector<int> overlap;
      std::set_intersection(full.begin(), full.end(), mod.begin(), mod.end(),
                            std::back_inserter(overlap));
      EXPECT_TRUE(overlap.empty())
          << "atom " << i << " has a pair both fully excluded and 1-4";
      // Directed lists must pair up: j in list(i) <=> i in list(j).
      for (int j : full) {
        EXPECT_TRUE(std::binary_search(table.excluded(j).begin(),
                                       table.excluded(j).end(), i));
      }
      for (int j : mod) {
        EXPECT_TRUE(std::binary_search(table.modified(j).begin(),
                                       table.modified(j).end(), i));
      }
    }
  }
}

TEST(ExclusionPropertyTest, EntryCountsMatchPairClassification) {
  Rng rng(0x77);
  const Molecule m = random_molecule(24, 3, rng);
  const ExclusionTable table = ExclusionTable::build(m);
  const auto dist = bond_distances(m);
  std::size_t full_pairs = 0, mod_pairs = 0;
  for (const auto& [pair, d] : dist) {
    (void)pair;
    if (d <= 2) {
      ++full_pairs;
    } else if (d == 3) {
      ++mod_pairs;
    }
  }
  EXPECT_EQ(table.full_entry_count(), 2 * full_pairs);
  EXPECT_EQ(table.modified_entry_count(), 2 * mod_pairs);
}

}  // namespace
}  // namespace scalemd
