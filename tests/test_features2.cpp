#include <gtest/gtest.h>

#include <cmath>

#include "gen/presets.hpp"
#include "gen/water_box.hpp"
#include "seq/constraints.hpp"
#include "seq/engine.hpp"
#include "seq/minimize.hpp"
#include "seq/pairlist.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace scalemd {
namespace {

// ---------------------------------------------------------------------------
// SHAKE / RATTLE
// ---------------------------------------------------------------------------

std::vector<double> inverse_masses(const Molecule& mol) {
  std::vector<double> inv;
  for (const Atom& a : mol.atoms()) inv.push_back(1.0 / a.mass);
  return inv;
}

TEST(ConstraintsTest, ShakeRestoresBondLengths) {
  Molecule mol = make_water_box({12, 12, 12}, 3);
  const BondConstraints cons(mol);
  ASSERT_EQ(cons.constraint_count(), mol.bonds().size());
  EXPECT_LT(cons.max_violation(mol.positions()), 1e-9);

  // Perturb every atom, then SHAKE back using the unperturbed reference.
  const std::vector<Vec3> ref(mol.positions().begin(), mol.positions().end());
  Rng rng(5);
  for (Vec3& p : mol.positions()) p += rng.unit_vector() * 0.05;
  EXPECT_GT(cons.max_violation(mol.positions()), 1e-4);

  std::vector<Vec3> no_vel;
  const auto inv = inverse_masses(mol);
  const int iters = cons.shake(ref, mol.positions(), no_vel, inv, 0.0);
  EXPECT_GE(iters, 0);
  EXPECT_LT(cons.max_violation(mol.positions()), 1e-8);
}

TEST(ConstraintsTest, ShakeWeightsByInverseMass) {
  // A single heavy-light pair: the light atom should absorb most of the
  // correction.
  Molecule mol;
  mol.box = {20, 20, 20};
  const int t = mol.params.add_lj_type(1e-9, 0.1);
  const int b = mol.params.add_bond_param(450, 1.0);
  mol.params.finalize();
  mol.add_atom({16.0, 0, t}, {10, 10, 10});
  mol.add_atom({1.0, 0, t}, {11, 10, 10});
  mol.add_bond(0, 1, b);
  const BondConstraints cons(mol);

  const std::vector<Vec3> ref(mol.positions().begin(), mol.positions().end());
  mol.positions()[1].x = 11.4;  // stretch the bond to 1.4
  std::vector<Vec3> no_vel;
  const auto inv = inverse_masses(mol);
  ASSERT_GE(cons.shake(ref, mol.positions(), no_vel, inv, 0.0), 0);
  // Bond back at length 1.
  EXPECT_NEAR(norm(mol.positions()[0] - mol.positions()[1]), 1.0, 1e-6);
  // Heavy atom barely moved.
  EXPECT_LT(std::fabs(mol.positions()[0].x - 10.0),
            std::fabs(mol.positions()[1].x - 11.0));
}

TEST(ConstraintsTest, RattleRemovesBondVelocity) {
  Molecule mol = make_water_box({12, 12, 12}, 7);
  mol.assign_velocities(300.0, 3);
  const BondConstraints cons(mol);
  const auto inv = inverse_masses(mol);
  ASSERT_GE(cons.rattle(mol.positions(), mol.velocities(), inv), 0);
  for (const Bond& b : mol.bonds()) {
    const Vec3 r = mol.positions()[static_cast<std::size_t>(b.a)] -
                   mol.positions()[static_cast<std::size_t>(b.b)];
    const Vec3 dv = mol.velocities()[static_cast<std::size_t>(b.a)] -
                    mol.velocities()[static_cast<std::size_t>(b.b)];
    EXPECT_NEAR(dot(r, dv), 0.0, 1e-8);
  }
}

TEST(ConstraintsTest, ConstrainedDynamicsKeepsBondsRigid) {
  // Hand-rolled velocity Verlet + SHAKE/RATTLE on a small water box with a
  // timestep (2 fs) far beyond what flexible O-H bonds tolerate.
  Molecule mol = make_water_box({12, 12, 12}, 9);
  EngineOptions opts;
  opts.nonbonded.cutoff = 5.5;
  opts.nonbonded.switch_dist = 4.5;
  SequentialEngine eng(mol, opts);
  minimize(eng, 100);
  std::copy(eng.positions().begin(), eng.positions().end(),
            mol.positions().begin());
  mol.assign_velocities(250.0, 11);
  SequentialEngine run(mol, opts);

  const BondConstraints cons(mol);
  const auto inv = inverse_masses(mol);
  const double dt = 2.0 / units::kAkmaTimeFs;
  std::vector<Vec3> ref(run.positions().size());

  for (int step = 0; step < 50; ++step) {
    auto pos = run.mutable_positions();
    auto vel = run.mutable_velocities();
    // Half kick + drift.
    for (std::size_t i = 0; i < pos.size(); ++i) {
      vel[i] += run.forces()[i] * (0.5 * dt * inv[i]);
      ref[i] = pos[i];
      pos[i] += vel[i] * dt;
    }
    ASSERT_GE(cons.shake(ref, pos, vel, inv, dt), 0);
    run.compute_forces();
    for (std::size_t i = 0; i < pos.size(); ++i) {
      vel[i] += run.forces()[i] * (0.5 * dt * inv[i]);
    }
    ASSERT_GE(cons.rattle(pos, vel, inv), 0);
    ASSERT_LT(cons.max_violation(pos), 1e-7) << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// Verlet pairlist
// ---------------------------------------------------------------------------

TEST(PairlistTest, FindsExactlyTheInRangePairs) {
  Rng rng(3);
  const Vec3 box{20, 20, 20};
  std::vector<Vec3> pos;
  for (int i = 0; i < 120; ++i) pos.push_back(rng.point_in_box(box));
  VerletList list(box, 6.0, 1.0);
  list.build(pos);

  // Brute force within cutoff + skin.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (norm2(pos[i] - pos[j]) < 49.0) ++expected;
    }
  }
  EXPECT_EQ(list.pair_count(), expected);
  // Neighbor ids are sorted and strictly greater than the owner.
  for (int i = 0; i < 120; ++i) {
    int prev = i;
    for (int j : list.neighbors(i)) {
      EXPECT_GT(j, prev);
      prev = j;
    }
  }
}

TEST(PairlistTest, RebuildTriggersOnSkinViolation) {
  const Vec3 box{20, 20, 20};
  std::vector<Vec3> pos{{5, 5, 5}, {9, 5, 5}};
  VerletList list(box, 6.0, 1.0);
  list.build(pos);
  EXPECT_FALSE(list.needs_rebuild(pos));
  pos[0].x += 0.4;  // below skin/2
  EXPECT_FALSE(list.needs_rebuild(pos));
  pos[0].x += 0.2;  // beyond skin/2 total
  EXPECT_TRUE(list.needs_rebuild(pos));
}

TEST(PairlistTest, EngineForcesMatchCellListPath) {
  Molecule mol = small_solvated_chain(1200, 41);
  EngineOptions plain;
  plain.nonbonded.cutoff = 8.0;
  plain.nonbonded.switch_dist = 7.0;
  EngineOptions listed = plain;
  listed.use_pairlist = true;

  SequentialEngine a(mol, plain);
  SequentialEngine b(mol, listed);
  EXPECT_NEAR(a.potential().total(), b.potential().total(),
              1e-9 * std::fabs(a.potential().total()));
  double max_df = 0.0;
  for (std::size_t i = 0; i < a.forces().size(); ++i) {
    max_df = std::max(max_df, norm(a.forces()[i] - b.forces()[i]));
  }
  EXPECT_LT(max_df, 1e-7);
  // The listed path tests far fewer pairs than the full cell sweep.
  EXPECT_LT(b.work().pairs_tested, a.work().pairs_tested);
  EXPECT_EQ(b.work().pairs_computed, a.work().pairs_computed);
}

TEST(PairlistTest, ListAmortizesAcrossSteps) {
  Molecule mol = make_water_box({16, 16, 16}, 5);
  mol.assign_velocities(200.0, 7);
  EngineOptions opts;
  opts.nonbonded.cutoff = 6.0;
  opts.nonbonded.switch_dist = 5.0;
  opts.dt_fs = 0.5;
  opts.use_pairlist = true;
  opts.pairlist_skin = 2.0;
  SequentialEngine eng(mol, opts);
  eng.run(20);
  // Trajectory remains stable (the list rebuilt only when needed) and the
  // engine still conserves energy reasonably.
  EXPECT_TRUE(std::isfinite(eng.total_energy()));
}

TEST(PairlistTest, TrajectoryMatchesPlainEngine) {
  Molecule mol = make_water_box({14, 14, 14}, 13);
  mol.assign_velocities(150.0, 5);
  EngineOptions plain;
  plain.nonbonded.cutoff = 6.0;
  plain.nonbonded.switch_dist = 5.0;
  plain.dt_fs = 0.5;
  EngineOptions listed = plain;
  listed.use_pairlist = true;
  listed.pairlist_skin = 2.5;

  SequentialEngine a(mol, plain);
  SequentialEngine b(mol, listed);
  a.run(25);
  b.run(25);
  double max_dp = 0.0;
  for (std::size_t i = 0; i < a.positions().size(); ++i) {
    max_dp = std::max(max_dp, norm(a.positions()[i] - b.positions()[i]));
  }
  // Same pairs evaluated (skin covers all motion), different summation
  // order only.
  EXPECT_LT(max_dp, 1e-7);
}

}  // namespace
}  // namespace scalemd
