#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gen/presets.hpp"
#include "gen/water_box.hpp"
#include "lb/diffusion.hpp"
#include "lb/naive.hpp"
#include "lb/refine.hpp"
#include "seq/engine.hpp"
#include "seq/minimize.hpp"
#include "seq/mts.hpp"
#include "seq/thermostat.hpp"
#include "topo/io.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace scalemd {
namespace {

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

TEST(MinimizeTest, ReducesEnergyAndForce) {
  Molecule mol = small_solvated_chain(900, 13);
  EngineOptions opts;
  opts.nonbonded.cutoff = 8.0;
  opts.nonbonded.switch_dist = 6.5;
  SequentialEngine eng(mol, opts);
  const MinimizeResult r = minimize(eng, 200);
  EXPECT_LT(r.final_energy, r.initial_energy);
  EXPECT_GT(r.steps, 0);
}

TEST(MinimizeTest, StopsEarlyWhenConverged) {
  // A single diatomic at its bond minimum: nothing to do.
  Molecule mol;
  mol.box = {20, 20, 20};
  const int t = mol.params.add_lj_type(1e-9, 0.1);
  const int b = mol.params.add_bond_param(100, 2.0);
  mol.params.finalize();
  mol.add_atom({12, 0, t}, {9, 10, 10});
  mol.add_atom({12, 0, t}, {11, 10, 10});
  mol.add_bond(0, 1, b);
  SequentialEngine eng(mol, {});
  const MinimizeResult r = minimize(eng, 100, 0.2, /*force_tol=*/1.0);
  EXPECT_EQ(r.steps, 0);
}

TEST(MinimizeTest, ConservationAfterMinimization) {
  Molecule mol = make_water_box({14, 14, 14}, 3);
  EngineOptions opts;
  opts.nonbonded.cutoff = 6.0;
  opts.nonbonded.switch_dist = 5.0;
  opts.dt_fs = 0.5;
  SequentialEngine eng(mol, opts);
  minimize(eng, 200);
  // Thermalize from the relaxed structure and check tight conservation.
  Molecule relaxed = mol;
  std::copy(eng.positions().begin(), eng.positions().end(),
            relaxed.positions().begin());
  relaxed.assign_velocities(150.0, 3);
  SequentialEngine run(relaxed, opts);
  const double e0 = run.total_energy();
  run.run(200);
  EXPECT_NEAR(run.total_energy(), e0, 0.005 * std::fabs(e0) + 0.5);
}

// ---------------------------------------------------------------------------
// Thermostat
// ---------------------------------------------------------------------------

TEST(ThermostatTest, RescaleHitsTargetExactly) {
  Molecule mol = make_water_box({14, 14, 14}, 5);
  mol.assign_velocities(500.0, 9);
  std::vector<double> masses;
  for (const Atom& a : mol.atoms()) masses.push_back(a.mass);
  const std::size_t dof = 3 * static_cast<std::size_t>(mol.atom_count()) - 3;

  const Thermostat thermo(Thermostat::Kind::kRescale, 300.0);
  const double before = thermo.apply(mol.velocities(), masses, 1.0, dof);
  EXPECT_NEAR(before, 500.0, 25.0);
  const double after =
      temperature(kinetic_energy(mol.velocities(), masses), dof);
  EXPECT_NEAR(after, 300.0, 1e-9);
}

TEST(ThermostatTest, BerendsenMovesPartWay) {
  Molecule mol = make_water_box({14, 14, 14}, 5);
  mol.assign_velocities(500.0, 9);
  std::vector<double> masses;
  for (const Atom& a : mol.atoms()) masses.push_back(a.mass);
  const std::size_t dof = 3 * static_cast<std::size_t>(mol.atom_count()) - 3;

  const Thermostat thermo(Thermostat::Kind::kBerendsen, 300.0, /*tau_fs=*/100.0);
  const double before = thermo.apply(mol.velocities(), masses, /*dt_fs=*/10.0, dof);
  const double after = temperature(kinetic_energy(mol.velocities(), masses), dof);
  EXPECT_LT(after, before);
  EXPECT_GT(after, 300.0);  // weak coupling: not all the way in one step
}

TEST(ThermostatTest, EquilibratesOverRun) {
  Molecule mol = make_water_box({14, 14, 14}, 7);
  mol.assign_velocities(600.0, 21);
  EngineOptions opts;
  opts.nonbonded.cutoff = 6.0;
  opts.nonbonded.switch_dist = 5.0;
  opts.dt_fs = 0.5;
  SequentialEngine eng(mol, opts);
  minimize(eng, 50);
  const Thermostat thermo(Thermostat::Kind::kBerendsen, 300.0, 25.0);
  const std::size_t dof = 3 * static_cast<std::size_t>(mol.atom_count()) - 3;
  double t_last = 0.0;
  for (int i = 0; i < 150; ++i) {
    eng.step();
    t_last = thermo.apply(eng.mutable_velocities(), eng.masses(), 0.5, dof);
  }
  EXPECT_NEAR(t_last, 300.0, 90.0);
}

// ---------------------------------------------------------------------------
// Multiple timestepping
// ---------------------------------------------------------------------------

/// Shared relaxed water box for the MTS suite.
Molecule relaxed_water() {
  Molecule mol = make_water_box({13, 13, 13}, 5);
  EngineOptions opts;
  opts.nonbonded.cutoff = 6.0;
  opts.nonbonded.switch_dist = 5.0;
  SequentialEngine eng(mol, opts);
  minimize(eng, 150);
  std::copy(eng.positions().begin(), eng.positions().end(),
            mol.positions().begin());
  mol.assign_velocities(200.0, 5);
  return mol;
}

TEST(MtsTest, SlowEveryOneMatchesVelocityVerlet) {
  const Molecule mol = relaxed_water();
  MtsOptions mopts;
  mopts.nonbonded.cutoff = 6.0;
  mopts.nonbonded.switch_dist = 5.0;
  mopts.dt_fast_fs = 0.5;
  mopts.slow_every = 1;
  MtsEngine mts(mol, mopts);
  mts.run(10);

  EngineOptions eopts;
  eopts.nonbonded = mopts.nonbonded;
  eopts.dt_fs = 0.5;
  SequentialEngine vv(mol, eopts);
  vv.run(10);

  double max_dp = 0.0;
  for (std::size_t i = 0; i < vv.positions().size(); ++i) {
    max_dp = std::max(max_dp, norm(mts.engine().positions()[i] - vv.positions()[i]));
  }
  EXPECT_LT(max_dp, 1e-9);
}

TEST(MtsTest, ConservesEnergyAtModerateRatio) {
  const Molecule mol = relaxed_water();
  MtsOptions mopts;
  mopts.nonbonded.cutoff = 6.0;
  mopts.nonbonded.switch_dist = 5.0;
  mopts.dt_fast_fs = 0.5;
  mopts.slow_every = 4;
  MtsEngine mts(mol, mopts);
  const double e0 = mts.total_energy();
  mts.run(50);  // 200 fs of dynamics, slow forces every 2 fs
  EXPECT_NEAR(mts.total_energy(), e0, 0.02 * std::fabs(e0) + 1.0);
}

TEST(MtsTest, SavesSlowEvaluations) {
  const Molecule mol = relaxed_water();
  MtsOptions mopts;
  mopts.nonbonded.cutoff = 6.0;
  mopts.nonbonded.switch_dist = 5.0;
  mopts.slow_every = 4;
  MtsEngine mts(mol, mopts);
  const int before = mts.slow_evaluations();
  mts.run(8);  // 32 inner steps
  EXPECT_EQ(mts.slow_evaluations() - before, 8);
}

// ---------------------------------------------------------------------------
// Diffusion load balancing
// ---------------------------------------------------------------------------

LbProblem diffusion_problem(int pes, int objs, std::uint64_t seed) {
  Rng rng(seed);
  LbProblem p;
  p.num_pes = pes;
  p.background.assign(static_cast<std::size_t>(pes), 0.05);
  for (int i = 0; i < objs / 4; ++i) p.patch_home.push_back(i % pes);
  for (int i = 0; i < objs; ++i) {
    LbObject o;
    o.load = rng.uniform(0.1, 1.0);
    o.current_pe = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(pes / 4 + 1)));
    o.patch_a = i % (objs / 4);
    p.objects.push_back(o);
  }
  return p;
}

TEST(DiffusionTest, ImprovesImbalance) {
  const LbProblem p = diffusion_problem(32, 400, 3);
  const double before = imbalance_ratio(pe_loads(p, identity_map(p)));
  const LbAssignment map = diffusion_map(p);
  const double after = imbalance_ratio(pe_loads(p, map));
  EXPECT_LT(after, before);
  EXPECT_LT(after, 1.35);
}

TEST(DiffusionTest, ValidAssignment) {
  const LbProblem p = diffusion_problem(16, 100, 7);
  for (int pe : diffusion_map(p)) {
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, 16);
  }
}

TEST(DiffusionTest, SinglePeNoOp) {
  const LbProblem p = diffusion_problem(1, 20, 9);
  const LbAssignment map = diffusion_map(p);
  for (int pe : map) EXPECT_EQ(pe, 0);
}

TEST(DiffusionTest, BalancedInputStaysPut) {
  LbProblem p;
  p.num_pes = 4;
  p.background.assign(4, 0.0);
  p.patch_home = {0, 1, 2, 3};
  for (int i = 0; i < 4; ++i) {
    p.objects.push_back({.load = 1.0, .current_pe = i, .patch_a = i});
  }
  const LbAssignment map = diffusion_map(p);
  EXPECT_EQ(migration_count(identity_map(p), map), 0);
}

// ---------------------------------------------------------------------------
// Molecule serialization
// ---------------------------------------------------------------------------

TEST(MoleculeIoTest, RoundTripPreservesEverything) {
  Molecule mol = small_solvated_chain(800, 17);
  mol.assign_velocities(300.0, 4);
  std::stringstream ss;
  save_molecule(mol, ss);
  const Molecule back = load_molecule(ss);

  EXPECT_EQ(back.name, mol.name);
  EXPECT_EQ(back.atom_count(), mol.atom_count());
  EXPECT_EQ(back.bonds().size(), mol.bonds().size());
  EXPECT_EQ(back.angles().size(), mol.angles().size());
  EXPECT_EQ(back.dihedrals().size(), mol.dihedrals().size());
  EXPECT_EQ(back.impropers().size(), mol.impropers().size());
  EXPECT_EQ(back.params.lj_type_count(), mol.params.lj_type_count());
  EXPECT_DOUBLE_EQ(back.suggested_patch_size, mol.suggested_patch_size);
  for (int i = 0; i < mol.atom_count(); ++i) {
    const auto s = static_cast<std::size_t>(i);
    EXPECT_EQ(back.positions()[s], mol.positions()[s]);
    EXPECT_EQ(back.velocities()[s], mol.velocities()[s]);
    EXPECT_DOUBLE_EQ(back.atoms()[s].charge, mol.atoms()[s].charge);
  }
}

TEST(MoleculeIoTest, RoundTripPreservesEnergy) {
  Molecule mol = small_solvated_chain(600, 19);
  std::stringstream ss;
  save_molecule(mol, ss);
  const Molecule back = load_molecule(ss);
  SequentialEngine a(mol, {});
  SequentialEngine b(back, {});
  EXPECT_DOUBLE_EQ(a.potential().total(), b.potential().total());
}

TEST(MoleculeIoTest, RejectsBadMagic) {
  std::stringstream ss;
  ss << "not-a-molecule\n";
  EXPECT_THROW(load_molecule(ss), std::runtime_error);
}

TEST(MoleculeIoTest, RejectsTruncated) {
  Molecule mol = small_solvated_chain(300, 2);
  std::stringstream ss;
  save_molecule(mol, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(load_molecule(cut), std::runtime_error);
}

TEST(MoleculeIoTest, XyzHasAtomCountHeader) {
  const Molecule mol = make_water_box({12, 12, 12}, 3);
  std::stringstream ss;
  write_xyz(mol, ss, "test box");
  int n = 0;
  std::string comment;
  ss >> n;
  std::getline(ss, comment);  // rest of first line
  std::getline(ss, comment);
  EXPECT_EQ(n, mol.atom_count());
  EXPECT_EQ(comment, "test box");
  std::string elem;
  double x, y, z;
  ss >> elem >> x >> y >> z;
  EXPECT_EQ(elem, "O");
}

}  // namespace
}  // namespace scalemd
