// The serve-layer property suite (ctest label: serve).
//
// Contract under test (src/serve/): the BatchScheduler is (1) deterministic —
// fixed seed + virtual ticks reproduce the entire run, events and all — and
// (2) trajectory-invisible — every job's final state is bitwise identical to
// the same JobSpec run alone, regardless of worker count, preemption through
// the checkpoint machinery, or the shared derived-topology cache. Plus the
// scheduling-policy properties: FIFO within a priority class, priority
// ordering, and no starvation under aging.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

JobSpec make_job(const std::string& name, std::uint64_t seed, int priority,
                 int cycles = 2, int steps = 2) {
  JobSpec job;
  job.name = name;
  job.priority = priority;
  job.scenario.seed = seed;
  job.scenario.box = 10.0;
  job.scenario.num_pes = 2;
  job.scenario.cycles = cycles;
  job.scenario.steps = steps;
  return job;
}

void expect_state_bitwise(const JobResult& got, const JobResult& ref,
                          const std::string& what) {
  ASSERT_EQ(got.positions.size(), ref.positions.size()) << what;
  ASSERT_EQ(got.velocities.size(), ref.velocities.size()) << what;
  EXPECT_EQ(0, std::memcmp(got.positions.data(), ref.positions.data(),
                           got.positions.size() * sizeof(Vec3)))
      << what << ": positions differ";
  EXPECT_EQ(0, std::memcmp(got.velocities.data(), ref.velocities.data(),
                           got.velocities.size() * sizeof(Vec3)))
      << what << ": velocities differ";
}

// ---------------------------------------------------------------------------
// Batch schema: round-trip, located errors with job context, expansion.
// ---------------------------------------------------------------------------

BatchSpec sample_batch() {
  BatchSpec batch;
  JobSpec a = make_job("alpha", 42, 2, 3, 2);
  a.scenario.lb = LbStrategyKind::kGreedyRefine;
  a.scenario.kernel = NonbondedKernel::kTiled;
  a.scenario.dt_fs = 0.5;
  batch.jobs.push_back(a);
  JobSpec b = make_job("beta", 7, 0);
  b.replicas = 3;
  b.scenario.kind = TestSystemKind::kSolvatedChain;
  b.scenario.chain_beads = 10;
  batch.jobs.push_back(b);
  return batch;
}

TEST(ServeBatchTest, SerializeParseRoundTripsExactly) {
  const BatchSpec batch = sample_batch();
  const std::string text = serialize_batch(batch);
  BatchSpec parsed;
  BatchParseError err;
  ASSERT_TRUE(parse_batch(text, "rt", parsed, err)) << err.render();
  EXPECT_EQ(serialize_batch(parsed), text);
  ASSERT_EQ(parsed.jobs.size(), 2u);
  EXPECT_EQ(parsed.jobs[0].name, "alpha");
  EXPECT_EQ(parsed.jobs[0].priority, 2);
  EXPECT_EQ(parsed.jobs[1].replicas, 3);
  EXPECT_EQ(parsed.jobs[1].scenario.kind, TestSystemKind::kSolvatedChain);
}

TEST(ServeBatchTest, ErrorsCarryJobIndexNameAndLocation) {
  const std::string text =
      "job first\n"
      "cycles 2\n"
      "end\n"
      "\n"
      "job second\n"
      "cycles 2\n"
      "dt bogus\n"
      "end\n";
  BatchSpec batch;
  BatchParseError err;
  ASSERT_FALSE(parse_batch(text, "batch.txt", batch, err));
  EXPECT_EQ(err.file, "batch.txt");
  EXPECT_EQ(err.line, 7);
  EXPECT_EQ(err.job_index, 1);
  EXPECT_EQ(err.job_name, "second");
  EXPECT_EQ(err.render().rfind("batch.txt:7: job 1 'second': ", 0), 0u)
      << err.render();
}

TEST(ServeBatchTest, ValidationErrorsAtEndStillNameTheJob) {
  // pes out of range is only detectable when the block closes.
  const std::string text =
      "job solo\n"
      "pes 99\n"
      "end\n";
  BatchSpec batch;
  BatchParseError err;
  ASSERT_FALSE(parse_batch(text, "v.txt", batch, err));
  EXPECT_EQ(err.job_index, 0);
  EXPECT_EQ(err.job_name, "solo");
  EXPECT_EQ(err.line, 3);
  EXPECT_NE(err.reason.find("pes"), std::string::npos);
}

TEST(ServeBatchTest, StructuralErrorsAreLocated) {
  BatchSpec batch;
  BatchParseError err;
  ASSERT_FALSE(parse_batch("cycles 2\n", "s.txt", batch, err));
  EXPECT_EQ(err.job_index, -1);
  ASSERT_FALSE(parse_batch("job a\njob b\nend\n", "s.txt", batch, err));
  EXPECT_NE(err.reason.find("nested"), std::string::npos);
  ASSERT_FALSE(parse_batch("job a\ncycles 2\n", "s.txt", batch, err));
  EXPECT_NE(err.reason.find("unterminated"), std::string::npos);
  EXPECT_EQ(err.job_name, "a");
  ASSERT_FALSE(parse_batch("", "s.txt", batch, err));
  EXPECT_GE(err.line, 1);
  // Serve/fault axes are the batch's business, not a job's.
  ASSERT_FALSE(parse_batch("job a\nserve-jobs 4\nend\n", "s.txt", batch, err));
  EXPECT_NE(err.reason.find("serve"), std::string::npos);
  ASSERT_FALSE(
      parse_batch("job a\ndrop 0.1\ncheckpoint 1\nend\n", "s.txt", batch, err));
  EXPECT_NE(err.reason.find("fault-free"), std::string::npos);
}

TEST(ServeBatchTest, ExpandDerivesReplicaSeedsAndNames) {
  BatchSpec batch;
  JobSpec base = make_job("equil", 99, 3);
  base.replicas = 3;
  batch.jobs.push_back(base);
  batch.jobs.push_back(make_job("single", 5, 1));

  const std::vector<JobSpec> jobs = expand_batch(batch);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].name, "equil#0");
  EXPECT_EQ(jobs[0].scenario.seed, 99u);  // replica 0 keeps the base seed
  EXPECT_EQ(jobs[1].name, "equil#1");
  EXPECT_EQ(jobs[1].scenario.seed, Rng::derive(99, std::uint64_t{1}));
  EXPECT_EQ(jobs[2].scenario.seed, Rng::derive(99, std::uint64_t{2}));
  EXPECT_NE(jobs[1].scenario.seed, jobs[2].scenario.seed);
  for (const JobSpec& j : jobs) {
    EXPECT_EQ(j.replicas, 1);
    EXPECT_TRUE(validate_job(j).empty());
  }
  EXPECT_EQ(jobs[0].priority, 3);
  EXPECT_EQ(jobs[3].name, "single");  // un-replicated jobs keep their name
}

TEST(ServeBatchTest, SubmitRejectsUnservableJobs) {
  BatchScheduler sched(ServeOptions{});
  JobSpec bad = make_job("bad", 1, 0);
  bad.scenario.drop_prob = 0.1;
  EXPECT_THROW(sched.submit(bad), std::invalid_argument);
  JobSpec nameless = make_job("", 1, 0);
  EXPECT_THROW(sched.submit(nameless), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scheduling-policy properties. Scheduling runs on tiny systems: the
// policies are system-independent, so the fastest valid scenario will do.
// ---------------------------------------------------------------------------

TEST(ServeSchedulerTest, FifoWithinAPriorityClass) {
  ServeOptions opts;
  opts.workers = 1;
  BatchScheduler sched(opts);
  for (int j = 0; j < 4; ++j) {
    sched.submit(make_job("job" + std::to_string(j), 40 + j, /*priority=*/1));
  }
  const ServeReport report = sched.run();
  ASSERT_EQ(report.completion_order.size(), 4u);
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(report.completion_order[static_cast<std::size_t>(j)], j)
        << "equal-priority jobs must complete in submit order";
  }
}

TEST(ServeSchedulerTest, HigherPriorityRunsFirst) {
  ServeOptions opts;
  opts.workers = 1;
  opts.aging = 0;  // strict priority
  BatchScheduler sched(opts);
  sched.submit(make_job("low", 1, 0));
  sched.submit(make_job("mid", 2, 5));
  sched.submit(make_job("high", 3, 9));
  const ServeReport report = sched.run();
  ASSERT_EQ(report.completion_order.size(), 3u);
  EXPECT_EQ(report.completion_order[0], 2);
  EXPECT_EQ(report.completion_order[1], 1);
  EXPECT_EQ(report.completion_order[2], 0);
}

TEST(ServeSchedulerTest, AgingPreventsStarvationUnderPriorityMix) {
  // One worker, three long high-priority jobs, one short low-priority job.
  // With aging, the low job's effective priority overtakes the fixed gap and
  // it completes long before the high-priority backlog drains; with strict
  // priority it necessarily finishes last.
  const auto run_mix = [](int aging) {
    ServeOptions opts;
    opts.workers = 1;
    opts.preempt_every = 1;  // preemptible quanta, else residents never yield
    opts.aging = aging;
    BatchScheduler sched(opts);
    for (int j = 0; j < 3; ++j) {
      sched.submit(
          make_job("high" + std::to_string(j), 10 + j, /*priority=*/6,
                   /*cycles=*/4, /*steps=*/1));
    }
    sched.submit(make_job("low", 77, /*priority=*/0, /*cycles=*/1,
                          /*steps=*/1));
    return sched.run();
  };

  const ServeReport aged = run_mix(/*aging=*/2);
  const JobResult& low_aged = aged.results[3];
  EXPECT_TRUE(low_aged.complete);
  EXPECT_LT(low_aged.completion_seq, 3)
      << "with aging the starved job must overtake part of the backlog";

  const ServeReport strict = run_mix(/*aging=*/0);
  EXPECT_EQ(strict.results[3].completion_seq, 3)
      << "strict priority runs the low job last";
}

TEST(ServeSchedulerTest, FixedSeedReproducesTheEntireRun) {
  const auto run_once = [] {
    ServeOptions opts;
    opts.workers = 2;
    opts.preempt_every = 2;
    opts.preempt_prob = 0.4;  // chaos preemption, seeded
    opts.seed = 1234;
    BatchScheduler sched(opts);
    for (int j = 0; j < 5; ++j) {
      sched.submit(make_job("job" + std::to_string(j), 50 + j, j % 3));
    }
    const ServeReport report = sched.run();
    return std::make_pair(report, sched.events());
  };

  const auto [r1, e1] = run_once();
  const auto [r2, e2] = run_once();

  EXPECT_EQ(r1.completion_order, r2.completion_order);
  EXPECT_EQ(r1.rounds, r2.rounds);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].kind, e2[i].kind) << "event " << i;
    EXPECT_EQ(e1[i].job, e2[i].job) << "event " << i;
    EXPECT_EQ(e1[i].round, e2[i].round) << "event " << i;
    EXPECT_EQ(e1[i].at, e2[i].at) << "event " << i;
    EXPECT_EQ(e1[i].cycles_done, e2[i].cycles_done) << "event " << i;
  }
  for (std::size_t j = 0; j < r1.results.size(); ++j) {
    expect_state_bitwise(r1.results[j], r2.results[j],
                         "rerun of " + r1.results[j].name);
  }
}

// ---------------------------------------------------------------------------
// Trajectory invisibility: preemption, worker count and the artifact cache
// must not change a single bit of any job's final state.
// ---------------------------------------------------------------------------

TEST(ServeSchedulerTest, PreemptedJobResumesBitwiseEqual) {
  // A job with LB armed (the restore path re-arms LB from scratch) and one
  // without, forced through a checkpoint/evict/resume on every slice.
  JobSpec with_lb = make_job("lb", 42, 0, /*cycles=*/3);
  with_lb.scenario.lb = LbStrategyKind::kGreedyRefine;
  with_lb.scenario.num_pes = 4;
  const JobSpec plain = make_job("plain", 43, 0, /*cycles=*/3);

  ServeOptions opts;
  opts.workers = 1;  // forces interleaving: preempted jobs requeue
  opts.preempt_every = 1;
  BatchScheduler sched(opts);
  sched.submit(with_lb);
  sched.submit(plain);
  const ServeReport report = sched.run();

  int preemptions = 0;
  for (const JobResult& r : report.results) {
    EXPECT_TRUE(r.complete) << r.name;
    preemptions += r.preemptions;
  }
  EXPECT_GT(preemptions, 0) << "test must actually exercise preemption";

  expect_state_bitwise(report.results[0], run_job_alone(with_lb),
                       "preempted lb job vs solo");
  expect_state_bitwise(report.results[1], run_job_alone(plain),
                       "preempted plain job vs solo");
}

TEST(ServeSchedulerTest, CacheHitIsBitwiseIdenticalToMiss) {
  const JobSpec job = make_job("cached", 42, 0, 2, 3);

  TopologyCache shared;
  const JobResult miss = run_job_alone(job, &shared);
  EXPECT_FALSE(miss.cache_hit);
  const JobResult hit = run_job_alone(job, &shared);
  EXPECT_TRUE(hit.cache_hit);
  expect_state_bitwise(hit, miss, "cache hit vs miss");
  EXPECT_GT(shared.hits(), 0u);
  EXPECT_GT(shared.misses(), 0u);

  // Scheduler with the cache disabled vs enabled: same bits.
  const auto run_sched = [&](bool use_cache) {
    ServeOptions opts;
    opts.workers = 2;
    opts.use_cache = use_cache;
    BatchScheduler sched(opts);
    sched.submit(job);
    JobSpec sibling = job;  // same topology: the cached run shares artifacts
    sibling.name = "sibling";
    sibling.scenario.dt_fs = 0.5;
    sched.submit(sibling);
    return sched.run();
  };
  const ServeReport cached = run_sched(true);
  const ServeReport uncached = run_sched(false);
  EXPECT_GT(cached.cache_hits, 0u);
  EXPECT_EQ(uncached.cache_hits, 0u);
  for (std::size_t j = 0; j < cached.results.size(); ++j) {
    expect_state_bitwise(cached.results[j], uncached.results[j],
                         "cached vs uncached " + cached.results[j].name);
  }
}

// ---------------------------------------------------------------------------
// The acceptance matrix: one 8-job sweep, run solo, through the scheduler on
// {1, 2, 4} workers, and with forced mid-job preemption — all bitwise equal.
// ---------------------------------------------------------------------------

std::vector<JobSpec> acceptance_sweep() {
  std::vector<JobSpec> jobs;
  const LbStrategyKind lbs[] = {LbStrategyKind::kNone, LbStrategyKind::kGreedy,
                                LbStrategyKind::kGreedyRefine,
                                LbStrategyKind::kNone};
  for (int j = 0; j < 8; ++j) {
    JobSpec job = make_job("sweep" + std::to_string(j),
                           /*seed=*/j < 4 ? 42 : 1000 + j, j % 3,
                           /*cycles=*/2 + j % 2, /*steps=*/2);
    job.scenario.box = 10.0 + 2.0 * (j % 2);
    job.scenario.num_pes = j % 2 == 0 ? 2 : 4;
    job.scenario.lb = lbs[j % 4];
    job.scenario.kernel =
        j % 2 == 0 ? NonbondedKernel::kScalar : NonbondedKernel::kTiled;
    if (j >= 6) {
      job.scenario.kind = TestSystemKind::kSolvatedChain;
      job.scenario.chain_beads = 10;
    }
    jobs.push_back(job);
  }
  return jobs;
}

class ServeMatrixTest : public testing::TestWithParam<int> {};

TEST_P(ServeMatrixTest, SweepMatchesSoloRunsBitwise) {
  const int workers = GetParam();
  const std::vector<JobSpec> jobs = acceptance_sweep();

  TopologyCache shared;
  std::vector<JobResult> solo;
  for (const JobSpec& job : jobs) solo.push_back(run_job_alone(job, &shared));

  ServeOptions opts;
  opts.workers = workers;
  BatchScheduler sched(opts);
  for (const JobSpec& job : jobs) sched.submit(job);
  const ServeReport report = sched.run();

  ASSERT_EQ(report.results.size(), jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_TRUE(report.results[j].complete) << jobs[j].name;
    expect_state_bitwise(report.results[j], solo[j],
                         jobs[j].name + " on " + std::to_string(workers) +
                             " workers vs solo");
  }
}

TEST_P(ServeMatrixTest, SweepWithForcedPreemptionMatchesSoloRunsBitwise) {
  const int workers = GetParam();
  const std::vector<JobSpec> jobs = acceptance_sweep();

  std::vector<JobResult> solo;
  for (const JobSpec& job : jobs) solo.push_back(run_job_alone(job));

  ServeOptions opts;
  opts.workers = workers;
  opts.preempt_every = 1;   // checkpoint/evict/resume after every slice
  opts.preempt_prob = 0.3;  // plus seeded chaos preemption
  opts.seed = 777;
  BatchScheduler sched(opts);
  for (const JobSpec& job : jobs) sched.submit(job);
  const ServeReport report = sched.run();

  int preemptions = 0;
  for (const JobResult& r : report.results) preemptions += r.preemptions;
  EXPECT_GT(preemptions, 0);

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_TRUE(report.results[j].complete) << jobs[j].name;
    expect_state_bitwise(report.results[j], solo[j],
                         jobs[j].name + " preempted on " +
                             std::to_string(workers) + " workers vs solo");
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ServeMatrixTest, testing::Values(1, 2, 4),
                         [](const testing::TestParamInfo<int>& info) {
                           return "workers" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace scalemd
