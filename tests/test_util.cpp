#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/histogram.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/vec3.hpp"

namespace scalemd {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Vec3Test, CrossIsOrthogonal) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{-2, 1, 5};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
}

TEST(Vec3Test, NormAndNormalize) {
  const Vec3 a{3, 4, 0};
  EXPECT_DOUBLE_EQ(norm2(a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_NEAR(norm(normalized(a)), 1.0, 1e-14);
}

TEST(Vec3Test, RotateRodrigues) {
  const Vec3 x{1, 0, 0};
  const Vec3 z{0, 0, 1};
  const Vec3 r = rotate(x, z, M_PI / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR(r.z, 0.0, 1e-12);
  // Rotation preserves length and angle with the axis.
  const Vec3 v{0.3, -0.7, 0.2};
  const Vec3 axis = normalized(Vec3{1, 2, -1});
  const Vec3 w = rotate(v, axis, 1.234);
  EXPECT_NEAR(norm(w), norm(v), 1e-12);
  EXPECT_NEAR(dot(w, axis), dot(v, axis), 1e-12);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng r(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, DeriveIsPureAndStable) {
  // derive() is the contract the fuzzer's byte-for-byte replay rests on:
  // a pure function, identical across calls, processes and releases. The
  // pinned constants freeze the algorithm — changing the mixing silently
  // would invalidate every repro file in the wild.
  EXPECT_EQ(Rng::derive(1, std::uint64_t{0}), Rng::derive(1, std::uint64_t{0}));
  EXPECT_EQ(Rng::derive(42, "velocities"), Rng::derive(42, "velocities"));
  EXPECT_EQ(Rng::derive(1, std::uint64_t{0}), 0x29e49b199086d8d3ull);
  EXPECT_EQ(Rng::derive(1, "velocities"), 0x938f390cf470f8adull);
}

TEST(RngTest, DeriveSeparatesRootsAndStreams) {
  // Neighboring roots and neighboring stream ids must all land on distinct
  // child seeds, and the child streams must not overlap.
  for (std::uint64_t root : {0ull, 1ull, 2ull, 999ull}) {
    for (std::uint64_t s = 0; s < 8; ++s) {
      for (std::uint64_t t = s + 1; t < 8; ++t) {
        EXPECT_NE(Rng::derive(root, s), Rng::derive(root, t));
      }
      EXPECT_NE(Rng::derive(root, s), Rng::derive(root + 1, s));
    }
  }
  EXPECT_NE(Rng::derive(7, "system"), Rng::derive(7, "velocities"));
}

TEST(RngTest, SplitIsPositionInsensitive) {
  // split() keys off the original seed, not the current state: a module can
  // draw any amount before splitting and still hand out the same substream.
  Rng fresh(123);
  Rng advanced(123);
  for (int i = 0; i < 57; ++i) advanced.next_u64();
  Rng a = fresh.split("child");
  Rng b = advanced.split("child");
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(fresh.split(std::uint64_t{3}).next_u64(),
            Rng(Rng::derive(123, std::uint64_t{3})).next_u64());
}

TEST(RngTest, SplitStreamsAreDecorrelated) {
  // Sibling streams must look independent: no shared values in a short
  // window, and each stream still uniform (mean near 1/2).
  Rng root(2026);
  Rng a = root.split("a");
  Rng b = root.split("b");
  int same = 0;
  double mean_a = 0.0, mean_b = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t ua = a.next_u64(), ub = b.next_u64();
    same += (ua == ub);
    mean_a += static_cast<double>(ua >> 11) * 0x1.0p-53;
    mean_b += static_cast<double>(ub >> 11) * 0x1.0p-53;
  }
  EXPECT_EQ(same, 0);
  EXPECT_NEAR(mean_a / n, 0.5, 0.02);
  EXPECT_NEAR(mean_b / n, 0.5, 0.02);
}

TEST(RngTest, UniformIndexCoversAllResidues) {
  Rng r(17);
  int counts[10] = {};
  const int n = 10000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_index(10)];
  for (int k = 0; k < 10; ++k) {
    EXPECT_GT(counts[k], n / 10 / 2) << "residue " << k;
    EXPECT_LT(counts[k], n / 10 * 2) << "residue " << k;
  }
}

TEST(RngTest, UnitVectorIsUnit) {
  Rng r(13);
  Vec3 mean;
  for (int i = 0; i < 2000; ++i) {
    const Vec3 v = r.unit_vector();
    EXPECT_NEAR(norm(v), 1.0, 1e-12);
    mean += v;
  }
  // Directions should average out.
  EXPECT_LT(norm(mean) / 2000.0, 0.05);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.9);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-1.0);  // clamped into bin 0
  h.add(25.0);  // clamped into bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.clamped(), 2u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.max_sample(), 25.0);
}

TEST(HistogramTest, WeightedAddAndRender) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.count(1), 10u);
  EXPECT_EQ(h.total(), 10u);
  const std::string s = h.render(20);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("10"), std::string::npos);
}

TEST(StatsTest, Summarize) {
  const double vals[] = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(vals);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(StatsTest, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, ImbalanceRatio) {
  const double balanced[] = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(imbalance_ratio(balanced), 1.0);
  const double skewed[] = {4.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(imbalance_ratio(skewed), 2.0);
  EXPECT_DOUBLE_EQ(imbalance_ratio({}), 1.0);
}

TEST(StatsTest, MedianOddEvenAndUnsorted) {
  const double odd[] = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const double even[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(StatsTest, MedianEdgeCases) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);  // well-defined, not NaN
  const double one[] = {7.5};
  EXPECT_DOUBLE_EQ(median(one), 7.5);
  const double same[] = {2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(median(same), 2.0);
}

TEST(StatsTest, MadEdgeCases) {
  EXPECT_DOUBLE_EQ(mad({}), 0.0);
  const double one[] = {3.0};
  EXPECT_DOUBLE_EQ(mad(one), 0.0);
  const double same[] = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(mad(same), 0.0);
  const double vals[] = {1.0, 2.0, 3.0, 4.0, 100.0};
  // median 3, |dev| = {2, 1, 0, 1, 97} -> MAD 1: the outlier can't move it.
  EXPECT_DOUBLE_EQ(mad(vals), 1.0);
}

TEST(StatsTest, PercentileInterpolatesAndClamps) {
  const double vals[] = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(vals, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(vals, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(vals, 50.0), 25.0);
  // Out-of-range percentiles clamp instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(percentile(vals, -5.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(vals, 200.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  const double one[] = {9.0};
  EXPECT_DOUBLE_EQ(percentile(one, 75.0), 9.0);
}

TEST(StatsTest, RobustSummarizeEdgeCases) {
  const RobustSummary empty = robust_summarize({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.median, 0.0);
  EXPECT_DOUBLE_EQ(empty.mad, 0.0);

  const double one[] = {4.0};
  const RobustSummary single = robust_summarize(one);
  EXPECT_EQ(single.n, 1u);
  EXPECT_DOUBLE_EQ(single.min, 4.0);
  EXPECT_DOUBLE_EQ(single.max, 4.0);
  EXPECT_DOUBLE_EQ(single.median, 4.0);
  EXPECT_DOUBLE_EQ(single.mad, 0.0);

  const double vals[] = {3.0, 1.0, 2.0, 100.0};
  const RobustSummary s = robust_summarize(vals);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(HistogramTest, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 4), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Histogram(nan, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, inf, 4), std::invalid_argument);
}

TEST(HistogramTest, NonFiniteSamplesAreCountedNotPropagated) {
  Histogram h(0.0, 10.0, 5);
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.clamped(), 3u);
  EXPECT_EQ(h.count(0), 2u);  // NaN and -inf land in the first bin
  EXPECT_EQ(h.count(4), 1u);  // +inf lands in the last bin
  // Statistics stay finite: only the one real sample contributes.
  EXPECT_DOUBLE_EQ(h.max_sample(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean_sample(), 5.0);
}

TEST(TableTest, RenderAligned) {
  Table t({"Processors", "Time"});
  t.add_row({"1", "57.1"});
  t.add_row({"2048", "0.0573"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Processors"), std::string::npos);
  EXPECT_NE(s.find("0.0573"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, SignificantDigitFormat) {
  EXPECT_EQ(fmt_sig(57.123, 3), "57.1");
  EXPECT_EQ(fmt_sig(0.082212, 3), "0.0822");
  EXPECT_EQ(fmt_sig(3.94, 2), "3.9");
  EXPECT_EQ(fmt_sig(1252.4, 4), "1252");
  EXPECT_EQ(fmt_sig(0.0, 3), "0");
  EXPECT_EQ(fmt_fixed(2.0 / 3.0, 2), "0.67");
}

// ---------------------------------------------------------------------------
// ThreadPool: the static schedule, error propagation and reuse guarantees
// that the threaded execution backend and the tiled kernels depend on.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, StaticScheduleMapsTaskToWorkerModSize) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4);
  constexpr std::size_t kTasks = 97;
  std::vector<int> worker_of(kTasks, -1);
  std::atomic<int> calls{0};
  pool.run(kTasks, [&](std::size_t task, int worker) {
    worker_of[task] = worker;
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), static_cast<int>(kTasks));
  for (std::size_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(worker_of[t], static_cast<int>(t % 4)) << "task " << t;
  }
}

TEST(ThreadPoolTest, PerWorkerAccumulatorsFoldDeterministically) {
  // The determinism recipe from the header comment: give each worker its own
  // accumulator, reduce in worker order. Repeated runs must agree bitwise.
  ThreadPool pool(3);
  auto folded_sum = [&pool] {
    std::vector<double> partial(3, 0.0);
    pool.run(1000, [&](std::size_t task, int worker) {
      partial[static_cast<std::size_t>(worker)] +=
          1.0 / static_cast<double>(task + 1);
    });
    double sum = 0.0;
    for (double p : partial) sum += p;
    return sum;
  };
  const double first = folded_sum();
  for (int rep = 0; rep < 20; ++rep) {
    EXPECT_EQ(folded_sum(), first) << "rep " << rep;
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  EXPECT_THROW(
      pool.run(64,
               [&](std::size_t task, int) {
                 if (task == 13) throw std::runtime_error("task 13 failed");
                 done.fetch_add(1, std::memory_order_relaxed);
               }),
      std::runtime_error);
  // The non-throwing workers finish their share; nothing deadlocks.
  EXPECT_GT(done.load(), 0);

  // The pool must remain fully functional after a throwing run.
  std::atomic<int> after{0};
  pool.run(32, [&](std::size_t, int) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 32);
}

TEST(ThreadPoolTest, LowestWorkerIndexWinsWhenSeveralThrow) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 10; ++rep) {
    try {
      pool.run(4, [](std::size_t, int worker) {
        throw std::runtime_error("worker " + std::to_string(worker));
      });
      FAIL() << "run() must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "worker 0");
    }
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineAndPropagates) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::size_t ran = 0;
  pool.run(10, [&](std::size_t, int worker) {
    EXPECT_EQ(worker, 0);
    ++ran;
  });
  EXPECT_EQ(ran, 10u);
  EXPECT_THROW(pool.run(1,
                        [](std::size_t, int) {
                          throw std::logic_error("inline");
                        }),
               std::logic_error);
  pool.run(1, [&](std::size_t, int) { ++ran; });
  EXPECT_EQ(ran, 11u);
}

TEST(ThreadPoolTest, NestedSubmissionToADistinctPoolWorks) {
  // run() is not reentrant on the same pool, but a task may drive a
  // different pool (the pattern a per-PE worker uses for inner kernels).
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> leaf{0};
  outer.run(8, [&](std::size_t, int worker) {
    if (worker == 0) {
      // Only worker 0 submits to the inner pool: the inner pool is itself
      // non-reentrant, and its run() is serialized by a single driver.
      inner.run(16, [&](std::size_t, int) {
        leaf.fetch_add(1, std::memory_order_relaxed);
      });
    } else {
      leaf.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Worker 0 owns tasks {0,2,4,6} (4 inner runs of 16) and worker 1 owns
  // {1,3,5,7} (4 direct increments).
  EXPECT_EQ(leaf.load(), 4 * 16 + 4);
}

TEST(ThreadPoolTest, ManySmallRunsStress) {
  // Hammer the start/finish handshake: thousands of tiny generations catch
  // lost-wakeup bugs in the generation/condvar protocol.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int rep = 0; rep < 2000; ++rep) {
    pool.run(5, [&](std::size_t task, int) {
      total.fetch_add(task + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 2000u * 15u);
}

}  // namespace
}  // namespace scalemd
