#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "check/des_invariants.hpp"
#include "check/invariants.hpp"
#include "core/parallel_sim.hpp"
#include "gen/presets.hpp"
#include "gen/water_box.hpp"
#include "seq/constraints.hpp"
#include "seq/engine.hpp"
#include "trace/violations.hpp"

namespace scalemd {
namespace {

// ---------------------------------------------------------------------------
// Violation log.
// ---------------------------------------------------------------------------

TEST(ViolationLogTest, CollectsFiltersAndRenders) {
  ViolationLog log;
  EXPECT_TRUE(log.empty());
  log.add({3, "energy-drift", 1.5e-3, 1e-4, "E moved"});
  log.add({7, "net-force", 2.0e-6, 1e-9, "kick"});
  log.add({9, "energy-drift", 2.5e-3, 1e-4, "E moved more"});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.of_term("energy-drift").size(), 2u);
  EXPECT_EQ(log.of_term("net-force").size(), 1u);
  EXPECT_EQ(log.of_term("constraint-tolerance").size(), 0u);

  const std::string text = log.render();
  EXPECT_NE(text.find("energy-drift"), std::string::npos);
  EXPECT_NE(text.find("net-force"), std::string::npos);
  EXPECT_NE(text.find("kick"), std::string::npos);

  log.clear();
  EXPECT_TRUE(log.empty());
}

// ---------------------------------------------------------------------------
// Invariants on the sequential engine.
// ---------------------------------------------------------------------------

EngineOptions water_engine_options() {
  EngineOptions opts;
  opts.nonbonded.cutoff = 6.5;
  opts.nonbonded.switch_dist = 5.5;
  // Flexible O-H bonds: keep the timestep small enough that the velocity
  // Verlet energy oscillation stays well inside the checker's drift bound.
  opts.dt_fs = 0.5;
  return opts;
}

TEST(InvariantCheckerTest, CleanNveRunPassesAllChecks) {
  Molecule m = make_water_box({16, 16, 16}, 5);
  m.assign_velocities(300.0, 55);
  SequentialEngine engine(m, water_engine_options());

  InvariantOptions opts;
  opts.check_exclusions = true;
  InvariantChecker checker(opts);
  checker.attach(engine);
  engine.run(10);

  EXPECT_EQ(engine.steps_done(), 10);
  EXPECT_GE(checker.checks_run(), 40u);  // 4 invariants x 10 steps
  EXPECT_TRUE(checker.ok()) << checker.log().render();
}

TEST(InvariantCheckerTest, ObserverHonorsCheckCadence) {
  Molecule m = make_water_box({12, 12, 12}, 5);
  m.assign_velocities(300.0, 55);
  SequentialEngine engine(m, water_engine_options());

  InvariantOptions opts;
  opts.every = 5;
  opts.check_energy = false;
  opts.check_momentum = false;
  InvariantChecker checker(opts);
  checker.attach(engine);
  engine.run(10);

  EXPECT_EQ(checker.checks_run(), 2u);  // net force at steps 5 and 10 only
}

TEST(InvariantCheckerTest, PerturbedForceViolatesNewtonsThirdLaw) {
  Molecule m = make_water_box({14, 14, 14}, 9);
  SequentialEngine engine(m, water_engine_options());

  InvariantChecker checker;
  std::vector<Vec3> forces(engine.forces().begin(), engine.forces().end());
  ASSERT_TRUE(checker.check_net_force(forces, 0));

  // The acceptance scenario: one force component silently offset — tiny
  // against the individual pair forces, but decisively above the rounding
  // bound the checker derives from the total force magnitude.
  double sum_abs = 0.0;
  for (const Vec3& f : forces) {
    sum_abs += std::fabs(f.x) + std::fabs(f.y) + std::fabs(f.z);
  }
  forces[forces.size() / 2].x += 1e-6 + 1e-6 * sum_abs;
  EXPECT_FALSE(checker.check_net_force(forces, 1));
  ASSERT_EQ(checker.log().size(), 1u);
  const ViolationRecord& v = checker.log().records().front();
  EXPECT_EQ(v.term, "net-force");
  EXPECT_EQ(v.step, 1);
  EXPECT_GT(v.magnitude, v.bound);
}

TEST(InvariantCheckerTest, EnergyDriftAnchorsAtFirstObservation) {
  InvariantChecker checker;
  EXPECT_TRUE(checker.check_energy(-1234.5, 0));
  EXPECT_TRUE(checker.check_energy(-1234.5 * (1.0 + 1e-4), 1));
  EXPECT_FALSE(checker.check_energy(-1234.5 * (1.0 + 5e-2), 2));
  EXPECT_EQ(checker.log().of_term("energy-drift").size(), 1u);

  checker.log().clear();
  checker.reset_energy_reference();
  EXPECT_TRUE(checker.check_energy(-999.0, 3));  // re-anchored, no drift yet
  EXPECT_TRUE(checker.ok());
}

TEST(InvariantCheckerTest, MomentumCheckCatchesBiasedVelocities) {
  Molecule m = make_water_box({12, 12, 12}, 3);
  m.assign_velocities(300.0, 21);  // net momentum removed by the generator
  SequentialEngine engine(m, water_engine_options());

  InvariantChecker checker;
  ASSERT_TRUE(checker.check_momentum(engine.velocities(), engine.masses(), 0));

  std::vector<Vec3> biased(engine.velocities().begin(), engine.velocities().end());
  for (Vec3& v : biased) v.x += 1e-4;  // uniform drift
  EXPECT_FALSE(checker.check_momentum(biased, engine.masses(), 1));
  EXPECT_EQ(checker.log().of_term("net-momentum").size(), 1u);
}

TEST(InvariantCheckerTest, ExclusionCountCrossChecksKernelWork) {
  Molecule m = small_solvated_chain(400, 7);
  EngineOptions opts;
  opts.nonbonded.cutoff = 7.5;
  opts.nonbonded.switch_dist = 6.5;
  SequentialEngine engine(m, opts);

  InvariantChecker checker;
  ASSERT_TRUE(checker.check_exclusions(engine.molecule(), engine.exclusions(),
                                       engine.options().nonbonded, engine.work(),
                                       0));

  // A kernel that evaluated one excluded pair (or dropped one real pair)
  // shifts the count by one and must be flagged.
  WorkCounters off = engine.work();
  off.pairs_computed += 1;
  EXPECT_FALSE(checker.check_exclusions(engine.molecule(), engine.exclusions(),
                                        engine.options().nonbonded, off, 1));
  EXPECT_EQ(checker.log().of_term("exclusion-completeness").size(), 1u);
}

TEST(InvariantCheckerTest, ConstraintToleranceTracksShake) {
  Molecule m = small_solvated_chain(300, 13);
  BondConstraints cons(m);
  ASSERT_GT(cons.constraint_count(), 0u);

  std::vector<Vec3> pos(m.positions().begin(), m.positions().end());
  std::vector<Vec3> ref = pos;
  std::vector<Vec3> vel(pos.size());
  std::vector<double> inv_mass;
  for (const Atom& a : m.atoms()) inv_mass.push_back(1.0 / a.mass);

  // Drift the positions, solve, and verify the checker accepts the solved
  // state and rejects the drifted one.
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i].x += 1e-3 * static_cast<double>(i % 3);
  }
  InvariantChecker checker;
  ASSERT_GT(cons.max_violation(pos), 1e-8);
  EXPECT_FALSE(checker.check_constraints(cons, pos, 0));

  ASSERT_GE(cons.shake(ref, pos, vel, inv_mass, 1.0), 0);
  EXPECT_TRUE(checker.check_constraints(cons, pos, 1));
  EXPECT_EQ(checker.log().of_term("constraint-tolerance").size(), 1u);
}

TEST(InvariantCheckerTest, ConstrainedDynamicsChecksCleanEveryStep) {
  // Water-box geometry starts with all bonds at rest length; step, SHAKE the
  // drift back, and have the checker (constraints registered) observe the
  // solved state each step.
  Molecule m = make_water_box({12, 12, 12}, 9);
  m.assign_velocities(250.0, 23);
  EngineOptions eopts;
  eopts.nonbonded.cutoff = 5.5;
  eopts.nonbonded.switch_dist = 4.5;
  eopts.dt_fs = 1.0;
  SequentialEngine engine(m, eopts);

  BondConstraints cons(m);
  ASSERT_GT(cons.constraint_count(), 0u);
  InvariantOptions opts;
  opts.check_energy = false;    // SHAKE removes bond-vibration energy
  opts.check_momentum = false;  // position-only solve, velocities uncorrected
  InvariantChecker checker(opts);
  checker.set_constraints(&cons);

  std::vector<double> inv_mass;
  for (double mass : engine.masses()) inv_mass.push_back(1.0 / mass);
  std::vector<Vec3> no_vel;
  for (int s = 1; s <= 3; ++s) {
    std::vector<Vec3> ref(engine.positions().begin(), engine.positions().end());
    engine.step();
    ASSERT_GE(cons.shake(ref, engine.mutable_positions(), no_vel, inv_mass, 0.0),
              0);
    checker.observe(engine, s);  // post-solve, as a SHAKE driver would hook it
  }
  EXPECT_GE(checker.checks_run(), 6u);  // net force + constraints, 3 steps
  EXPECT_TRUE(checker.ok()) << checker.log().render();
}

// ---------------------------------------------------------------------------
// Invariants on the parallel core.
// ---------------------------------------------------------------------------

TEST(InvariantCheckerTest, NumericParallelCyclePassesDesAndPhysicsChecks) {
  Molecule m = small_solvated_chain(800, 31);
  m.suggested_patch_size = 8.0;
  m.assign_velocities(300.0, 71);
  NonbondedOptions nb;
  nb.cutoff = 7.5;
  nb.switch_dist = 6.5;
  const Workload wl(m, MachineModel::asci_red(), nb);

  ParallelOptions popts;
  popts.num_pes = 4;
  popts.numeric = true;
  popts.dt_fs = 0.5;
  ParallelSim sim(wl, popts);

  InvariantChecker checker;
  checker.attach(sim);
  sim.run_cycle(3);
  sim.run_cycle(2);

  EXPECT_GT(checker.checks_run(), 0u);
  EXPECT_TRUE(checker.ok()) << checker.log().render();
}

TEST(DesInvariantSinkTest, CleanSimulationSatisfiesRuntimeInvariants) {
  Molecule m = small_solvated_chain(800, 37);
  m.suggested_patch_size = 8.0;
  const Workload wl(m, MachineModel::asci_red(), {});

  ParallelOptions popts;
  popts.num_pes = 6;
  ParallelSim sim(wl, popts);

  ViolationLog log;
  DesInvariantSink sink(&log);
  sim.attach_sink(&sink);
  sim.run_cycle(3);
  sim.detach_sink(&sink);

  EXPECT_GT(sink.tasks_seen(), 0u);
  EXPECT_GT(sink.messages_seen(), 0u);
  EXPECT_TRUE(sink.ok()) << log.render();
}

TEST(DesInvariantSinkTest, FlagsClockRegressionCausalityAndNegativeCost) {
  ViolationLog log;
  DesInvariantSink sink(&log);

  TaskRecord t;
  t.pe = 2;
  t.start = 1.0;
  t.duration = 0.5;
  sink.on_task(t);
  EXPECT_TRUE(sink.ok());

  t.start = 1.2;  // before the previous task's completion at 1.5
  sink.on_task(t);
  EXPECT_EQ(log.of_term("pe-clock-monotonicity").size(), 1u);

  TaskRecord neg;
  neg.pe = 0;
  neg.start = 10.0;
  neg.duration = -0.1;
  sink.on_task(neg);
  EXPECT_EQ(log.of_term("negative-task-cost").size(), 1u);

  MsgRecord msg;
  msg.src_pe = 0;
  msg.dst_pe = 1;
  msg.send_time = 2.0;
  msg.recv_time = 1.0;
  sink.on_message(msg);
  EXPECT_EQ(log.of_term("message-causality").size(), 1u);

  EXPECT_EQ(sink.tasks_seen(), 3u);
  EXPECT_EQ(sink.messages_seen(), 1u);
  EXPECT_FALSE(sink.ok());
}

}  // namespace
}  // namespace scalemd
