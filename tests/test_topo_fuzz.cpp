// Property and mutation-fuzz tests for the topology reader (topo/io).
// Contract under test: load_molecule either returns a valid Molecule or
// throws MoleculeParseError carrying a "<source>:<line>:" location — it
// never crashes, never invokes UB (the unit suite runs under ASan/UBSan in
// CI), and never lets a non-finite number or out-of-range index through.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "topo/io.hpp"
#include "topo/molecule.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

/// A small molecule exercising every section of the format: two LJ types,
/// every bonded parameter kind, and one term of each kind.
Molecule sample_molecule() {
  Molecule mol;
  mol.name = "fuzz sample";
  mol.box = {20.0, 20.0, 20.0};
  mol.suggested_patch_size = 10.0;
  const int t0 = mol.params.add_lj_type(0.15, 1.8);
  const int t1 = mol.params.add_lj_type(0.05, 1.2);
  const int b = mol.params.add_bond_param(340.0, 1.09);
  const int a = mol.params.add_angle_param(55.0, 1.9);
  const int d = mol.params.add_dihedral_param(1.4, 3, 0.5);
  const int im = mol.params.add_improper_param(10.0, 0.1);
  mol.params.finalize();
  for (int i = 0; i < 5; ++i) {
    mol.add_atom({12.0, i % 2 == 0 ? 0.3 : -0.3, i % 2 == 0 ? t0 : t1},
                 {2.0 + 3.0 * i, 5.0, 5.0});
  }
  mol.add_bond(0, 1, b);
  mol.add_bond(1, 2, b);
  mol.add_bond(2, 3, b);
  mol.add_bond(3, 4, b);
  mol.add_angle(0, 1, 2, a);
  mol.add_dihedral(0, 1, 2, 3, d);
  mol.add_improper(1, 0, 2, 3, im);
  mol.assign_velocities(300.0, 7);
  return mol;
}

std::string serialize(const Molecule& mol) {
  std::ostringstream os;
  save_molecule(mol, os);
  return os.str();
}

/// The property every input must satisfy: parse cleanly or fail with a
/// located MoleculeParseError. Returns true when the input parsed.
bool parses_cleanly_or_throws_located(const std::string& text) {
  std::istringstream is(text);
  try {
    const Molecule mol = load_molecule(is, "fuzz");
    mol.validate();
    return true;
  } catch (const MoleculeParseError& e) {
    EXPECT_EQ(e.source(), "fuzz");
    EXPECT_GE(e.line(), 1);
    const std::string expected_prefix =
        "fuzz:" + std::to_string(e.line()) + ": ";
    EXPECT_EQ(std::string(e.what()).rfind(expected_prefix, 0), 0u)
        << "message '" << e.what() << "' does not start with its location";
    return false;
  }
  // Any other exception type (or a crash) fails the test via gtest/ASan.
}

TEST(TopoFuzzTest, RoundTripStillParses) {
  EXPECT_TRUE(parses_cleanly_or_throws_located(serialize(sample_molecule())));
}

TEST(TopoFuzzTest, RejectsBadMagicWithLocation) {
  std::istringstream is("not-a-molecule 9\n");
  try {
    load_molecule(is, "bad.mol");
    FAIL() << "expected MoleculeParseError";
  } catch (const MoleculeParseError& e) {
    EXPECT_EQ(e.source(), "bad.mol");
    EXPECT_EQ(e.line(), 1);
    EXPECT_NE(std::string(e.what()).find("bad.mol:1:"), std::string::npos);
  }
}

TEST(TopoFuzzTest, RejectsEmptyInput) {
  EXPECT_FALSE(parses_cleanly_or_throws_located(""));
}

TEST(TopoFuzzTest, EveryTruncationFailsCleanly) {
  const std::string good = serialize(sample_molecule());
  // Cut at every prefix length: a truncated file must never parse (the
  // trailing "end" sentinel is gone) and must never crash.
  for (std::size_t len = 0; len + 1 < good.size(); ++len) {
    EXPECT_FALSE(parses_cleanly_or_throws_located(good.substr(0, len)))
        << "prefix of length " << len << " unexpectedly parsed";
  }
}

TEST(TopoFuzzTest, RejectsNonFiniteNumbers) {
  for (const char* bad : {"nan", "-nan", "inf", "-inf", "1e999"}) {
    std::string text = serialize(sample_molecule());
    // Replace the first atom's mass (first token of the atoms block).
    const std::size_t atoms = text.find("atoms ");
    ASSERT_NE(atoms, std::string::npos);
    const std::size_t line_end = text.find('\n', atoms);
    const std::size_t value_end = text.find(' ', line_end + 1);
    text.replace(line_end + 1, value_end - line_end - 1, bad);
    EXPECT_FALSE(parses_cleanly_or_throws_located(text)) << "value " << bad;
  }
}

TEST(TopoFuzzTest, RejectsOutOfRangeIndicesAndCounts) {
  std::string text = serialize(sample_molecule());
  auto replaced = [&](const std::string& from, const std::string& to) {
    std::string t = text;
    const std::size_t pos = t.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    t.replace(pos, from.size(), to);
    return t;
  };
  EXPECT_FALSE(parses_cleanly_or_throws_located(replaced("ljtypes 2", "ljtypes -1")));
  EXPECT_FALSE(parses_cleanly_or_throws_located(
      replaced("ljtypes 2", "ljtypes 999999999999999999999")));
  EXPECT_FALSE(parses_cleanly_or_throws_located(replaced("bonds 4", "bonds 7")));
  // An atom index beyond the atom count in the first bond line.
  const std::size_t bonds = text.find("bonds 4");
  ASSERT_NE(bonds, std::string::npos);
  const std::size_t line = text.find('\n', bonds) + 1;
  std::string t = text;
  t.replace(line, t.find('\n', line) - line, "0 17 0");
  EXPECT_FALSE(parses_cleanly_or_throws_located(t));
  // A parameter index beyond the parameter table.
  t = text;
  t.replace(line, t.find('\n', line) - line, "0 1 5");
  EXPECT_FALSE(parses_cleanly_or_throws_located(t));
}

TEST(TopoFuzzTest, RejectsNonPositiveBoxAndMass) {
  std::string text = serialize(sample_molecule());
  auto replaced = [&](const std::string& from, const std::string& to) {
    std::string t = text;
    const std::size_t pos = t.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    t.replace(pos, from.size(), to);
    return t;
  };
  EXPECT_FALSE(parses_cleanly_or_throws_located(replaced("box 20 20 20", "box 0 20 20")));
  EXPECT_FALSE(parses_cleanly_or_throws_located(replaced("box 20 20 20", "box 20 -5 20")));
  EXPECT_FALSE(parses_cleanly_or_throws_located(replaced("atoms 5\n12 ", "atoms 5\n-12 ")));
  EXPECT_FALSE(parses_cleanly_or_throws_located(replaced("atoms 5\n12 ", "atoms 5\n0 ")));
}

TEST(TopoFuzzTest, ErrorLineNumbersPointAtTheOffendingLine) {
  // Corrupt a token on a known line and check the reported line matches.
  const std::string good = serialize(sample_molecule());
  std::istringstream count_lines(good);
  std::string line;
  int box_line = 0, n = 0;
  while (std::getline(count_lines, line)) {
    ++n;
    if (line.rfind("box ", 0) == 0) box_line = n;
  }
  ASSERT_GT(box_line, 0);

  std::string text = good;
  const std::size_t pos = text.find("box 20");
  text.replace(pos, 6, "box xx");
  std::istringstream is(text);
  try {
    load_molecule(is, "loc");
    FAIL() << "expected MoleculeParseError";
  } catch (const MoleculeParseError& e) {
    EXPECT_EQ(e.line(), box_line);
  }
}

// ---------------------------------------------------------------------------
// Mutation fuzzing: random corruptions of a valid serialization. Each input
// must parse or throw a located MoleculeParseError — nothing else.
// ---------------------------------------------------------------------------

std::string mutate(const std::string& good, Rng& rng) {
  std::string text = good;
  const int op = static_cast<int>(rng.uniform(0.0, 5.0));
  const auto pick_pos = [&](std::size_t size) {
    return static_cast<std::size_t>(rng.uniform(0.0, static_cast<double>(size)));
  };
  switch (op) {
    case 0:  // truncate
      text.resize(pick_pos(text.size()));
      break;
    case 1: {  // corrupt one byte
      if (!text.empty()) {
        text[pick_pos(text.size())] =
            static_cast<char>(rng.uniform(1.0, 127.0));
      }
      break;
    }
    case 2: {  // swap a whitespace-delimited token for a hostile one
      static const char* kHostile[] = {"nan", "inf", "-1", "1e999", "garbage",
                                       "999999999999999999999", "0x10", ""};
      const std::size_t start = pick_pos(text.size());
      const std::size_t tok_begin = text.find_first_not_of(" \n", start);
      if (tok_begin == std::string::npos) break;
      std::size_t tok_end = text.find_first_of(" \n", tok_begin);
      if (tok_end == std::string::npos) tok_end = text.size();
      text.replace(tok_begin, tok_end - tok_begin,
                   kHostile[static_cast<std::size_t>(rng.uniform(0.0, 8.0))]);
      break;
    }
    case 3: {  // delete one full line
      const std::size_t start = pick_pos(text.size());
      const std::size_t line_begin = text.rfind('\n', start);
      const std::size_t begin = line_begin == std::string::npos ? 0 : line_begin + 1;
      std::size_t end = text.find('\n', begin);
      end = end == std::string::npos ? text.size() : end + 1;
      text.erase(begin, end - begin);
      break;
    }
    default: {  // duplicate one full line
      const std::size_t start = pick_pos(text.size());
      const std::size_t line_begin = text.rfind('\n', start);
      const std::size_t begin = line_begin == std::string::npos ? 0 : line_begin + 1;
      std::size_t end = text.find('\n', begin);
      end = end == std::string::npos ? text.size() : end + 1;
      text.insert(begin, text.substr(begin, end - begin));
      break;
    }
  }
  return text;
}

TEST(TopoFuzzTest, MutatedInputsNeverCrashOrEscapeTheContract) {
  const std::string good = serialize(sample_molecule());
  Rng rng(20260806);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = good;
    // Stack 1-3 mutations so corruptions compound.
    const int rounds = 1 + static_cast<int>(rng.uniform(0.0, 3.0));
    for (int r = 0; r < rounds; ++r) text = mutate(text, rng);
    if (parses_cleanly_or_throws_located(text)) {
      ++parsed;
    } else {
      ++rejected;
    }
  }
  // The fuzzer must actually exercise the error paths (and some mutations —
  // e.g. whitespace-only corruptions — legitimately still parse).
  EXPECT_GT(rejected, 100) << "fuzzer produced too few malformed inputs";
  EXPECT_GT(parsed + rejected, 0);
}

}  // namespace
}  // namespace scalemd
