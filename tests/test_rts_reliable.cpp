#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "des/fault.hpp"
#include "rts/multicast.hpp"
#include "rts/reduction.hpp"
#include "rts/reliable.hpp"
#include "trace/event_log.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

MachineModel rel_test_machine() {
  MachineModel m;
  m.name = "reliable-test";
  m.send_overhead = 0.01;
  m.recv_overhead = 0.005;
  m.latency = 0.1;
  m.byte_time = 0.0;
  m.pack_byte_cost = 0.0;
  m.local_overhead = 0.001;
  return m;
}

/// N tagged payloads PE 0 -> PE 1; each records into its own slot, so
/// reordering is invisible but duplication and loss are not.
struct SlotRun {
  std::vector<int> hits;        ///< deliveries per payload
  std::vector<double> values;   ///< value written by each payload
  ReliableStats stats;
  bool idle = false;
};

SlotRun run_slots(const FaultPlan& plan, bool reliable, int n = 20) {
  Simulator sim(2, rel_test_machine());
  if (!plan.empty()) sim.set_fault_plan(plan);
  // A 30% drop rate can eat the default 6-attempt budget (payload *and* ack
  // are both on the wire); give the soak enough headroom that abandonment
  // means a real protocol bug.
  ReliableOptions ropts;
  ropts.max_attempts = 12;
  ReliableComm comm(sim, ropts);
  SlotRun out;
  out.hits.assign(static_cast<std::size_t>(n), 0);
  out.values.assign(static_cast<std::size_t>(n), 0.0);
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   for (int i = 0; i < n; ++i) {
                     TaskMsg m;
                     m.bytes = 64;
                     m.fn = [&out, i](ExecContext&) {
                       ++out.hits[static_cast<std::size_t>(i)];
                       out.values[static_cast<std::size_t>(i)] = 0.5 + i;
                     };
                     if (reliable) {
                       comm.send(ctx, 1, m);
                     } else {
                       ctx.send(1, m);
                     }
                   }
                 }});
  sim.run();
  out.stats = comm.stats();
  out.idle = sim.idle();
  return out;
}

FaultPlan dup_everything(std::uint64_t seed = 1) {
  FaultPlan p;
  p.seed = seed;
  p.dup_prob = 1.0;
  return p;
}

FaultPlan lossy(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.drop_prob = 0.3;
  p.delay_prob = 0.3;
  p.delay_max = 0.05;
  return p;
}

// --- adversarial delivery without recovery is detectable -------------------

TEST(ReliableCommTest, DuplicationWithoutRecoveryDoubleExecutes) {
  const SlotRun r = run_slots(dup_everything(), /*reliable=*/false);
  ASSERT_TRUE(r.idle);
  for (int h : r.hits) EXPECT_EQ(h, 2);  // the defect dedup must fix
}

TEST(ReliableCommTest, DropsWithoutRecoveryLoseMessages) {
  const SlotRun r = run_slots(lossy(/*seed=*/7), /*reliable=*/false);
  ASSERT_TRUE(r.idle);
  int lost = 0;
  for (int h : r.hits) lost += h == 0 ? 1 : 0;
  EXPECT_GT(lost, 0);  // the defect retry must fix
}

// --- dedup + retry recover exactly-once delivery ---------------------------

TEST(ReliableCommTest, DedupSuppressesEveryDuplicate) {
  const SlotRun r = run_slots(dup_everything(), /*reliable=*/true);
  ASSERT_TRUE(r.idle);
  for (int h : r.hits) EXPECT_EQ(h, 1);
  EXPECT_GT(r.stats.duplicates_suppressed, 0u);
  EXPECT_EQ(r.stats.abandoned, 0u);
}

TEST(ReliableCommTest, RetryRecoversDroppedAndDelayedMessages) {
  for (std::uint64_t seed : {7u, 21u, 1234u}) {
    const SlotRun r = run_slots(lossy(seed), /*reliable=*/true);
    ASSERT_TRUE(r.idle);
    for (int h : r.hits) EXPECT_EQ(h, 1) << "seed " << seed;
    EXPECT_GT(r.stats.retries, 0u) << "seed " << seed;
    EXPECT_EQ(r.stats.abandoned, 0u) << "seed " << seed;
  }
}

TEST(ReliableCommTest, RecoveredRunMatchesFaultFreeBitwise) {
  // Payload effects under dedup+retry must be *identical* to the fault-free
  // run: same slots hit exactly once, same values bit for bit.
  const SlotRun clean = run_slots(FaultPlan{}, /*reliable=*/true);
  for (std::uint64_t seed : {3u, 99u}) {
    const SlotRun chaos = run_slots(lossy(seed), /*reliable=*/true);
    ASSERT_TRUE(chaos.idle);
    EXPECT_EQ(chaos.hits, clean.hits);
    ASSERT_EQ(chaos.values.size(), clean.values.size());
    for (std::size_t i = 0; i < clean.values.size(); ++i) {
      EXPECT_EQ(chaos.values[i], clean.values[i]);  // bitwise, not NEAR
    }
  }
}

TEST(ReliableCommTest, FaultFreePlanIsPassThrough) {
  // With an empty plan the layer must not wrap, ack or arm timers: the
  // schedule is bit-identical to plain sends.
  auto completion = [&](bool through_reliable) {
    Simulator sim(2, rel_test_machine());
    ReliableComm comm(sim);
    EXPECT_FALSE(comm.armed());
    sim.inject(0, {.fn = [&](ExecContext& ctx) {
                     TaskMsg m;
                     m.bytes = 128;
                     m.fn = [](ExecContext& c) { c.charge(0.02); };
                     if (through_reliable) {
                       comm.send(ctx, 1, m);
                     } else {
                       ctx.send(1, m);
                     }
                   }});
    sim.run();
    EXPECT_EQ(comm.stats().reliable_sends, 0u);
    return sim.time();
  };
  EXPECT_EQ(completion(true), completion(false));
}

TEST(ReliableCommTest, AbandonsSendsToAFailedPe) {
  FaultPlan plan;
  plan.failures.push_back({.pe = 1, .at_time = 0.05});
  Simulator sim(2, rel_test_machine());
  sim.set_fault_plan(plan);
  EventLog log;
  sim.set_sink(&log);
  ReliableComm comm(sim);
  int delivered = 0;
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   TaskMsg m;
                   m.fn = [&delivered](ExecContext&) { ++delivered; };
                   comm.send(ctx, 1, m);
                 }});
  sim.run();
  // The machine must drain (timers bounded by the dead-PE check), the send
  // must be given up on and recorded as lost.
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(comm.stats().abandoned, 1u);
  EXPECT_EQ(log.faults_of(FaultKind::kMessageLost).size(), 1u);
}

// --- multicast / reduction under adversarial delivery ----------------------

TEST(ReliableMulticastTest, ExactlyOncePerDestinationUnderDuplication) {
  Simulator sim(5, rel_test_machine());
  sim.set_fault_plan(dup_everything(/*seed=*/5));
  ReliableComm comm(sim);
  std::map<int, int> received;
  const std::vector<int> dests{1, 2, 3, 4};
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   multicast(
                       ctx, dests, 100, /*optimized=*/true,
                       [&](int pe) {
                         TaskMsg m;
                         m.fn = [&received, pe](ExecContext&) { ++received[pe]; };
                         return m;
                       },
                       &comm);
                 }});
  sim.run();
  ASSERT_TRUE(sim.idle());
  for (int pe : dests) EXPECT_EQ(received[pe], 1) << "pe " << pe;
}

TEST(ReliableMulticastTest, WithoutRecoveryDuplicationIsVisible) {
  Simulator sim(3, rel_test_machine());
  sim.set_fault_plan(dup_everything(/*seed=*/5));
  std::map<int, int> received;
  const std::vector<int> dests{1, 2};
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   multicast(ctx, dests, 100, /*optimized=*/true, [&](int pe) {
                     TaskMsg m;
                     m.fn = [&received, pe](ExecContext&) { ++received[pe]; };
                     return m;
                   });
                 }});
  sim.run();
  EXPECT_EQ(received[1], 2);
  EXPECT_EQ(received[2], 2);
}

TEST(ReliableReducerTest, TreeTotalsSurviveDuplicatedForwards) {
  // Without the reliable layer, duplicated tree edges double-count partial
  // sums; with it, totals match the fault-free value exactly.
  auto total_under = [&](bool reliable) {
    Simulator sim(8, rel_test_machine());
    sim.set_fault_plan(dup_everything(/*seed=*/17));
    ReliableComm comm(sim);
    const EntryId e = sim.entries().add("reduce", WorkCategory::kComm);
    std::vector<int> pe_of;
    for (int pe = 0; pe < 8; ++pe) pe_of.push_back(pe);
    double result = -1.0;
    Reducer red(pe_of, e, [&](int, double total) { result = total; });
    if (reliable) red.set_reliable(&comm);
    for (int pe = 0; pe < 8; ++pe) {
      sim.inject(pe, {.fn = [&red, pe](ExecContext& ctx) {
                        red.contribute(ctx, pe, 0, 1.0 + pe);
                      }});
    }
    sim.run();
    EXPECT_TRUE(sim.idle());
    return result;
  };
  const double expected = 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8;
  EXPECT_DOUBLE_EQ(total_under(true), expected);
  EXPECT_NE(total_under(false), expected);  // the defect made visible
}

// --- randomized property soak ----------------------------------------------
// Instead of a handful of hand-picked plans, draw many random
// drop x dup x delay mixes from a seeded stream and assert the protocol
// properties hold for every one of them.

FaultPlan random_message_plan(Rng& rng) {
  FaultPlan p;
  p.seed = rng.next_u64();
  p.drop_prob = rng.uniform(0.0, 0.35);
  p.dup_prob = rng.uniform(0.0, 0.30);
  p.delay_prob = rng.uniform(0.0, 0.50);
  p.delay_max = rng.uniform(1e-3, 0.05);
  return p;
}

TEST(ReliablePropertyTest, ExactlyOnceUnderRandomPlans) {
  // Exactly-once per slot, payload effects bitwise equal to the fault-free
  // run, and no send abandoned — for every randomly drawn plan.
  const SlotRun clean = run_slots(FaultPlan{}, /*reliable=*/true);
  Rng rng(Rng::derive(2026, "reliable-soak"));
  for (int trial = 0; trial < 25; ++trial) {
    const FaultPlan plan = random_message_plan(rng);
    const SlotRun r = run_slots(plan, /*reliable=*/true);
    ASSERT_TRUE(r.idle) << "trial " << trial << " plan seed " << plan.seed;
    EXPECT_EQ(r.hits, clean.hits) << "trial " << trial;
    ASSERT_EQ(r.values.size(), clean.values.size());
    for (std::size_t i = 0; i < clean.values.size(); ++i) {
      EXPECT_EQ(r.values[i], clean.values[i])  // bitwise, not NEAR
          << "trial " << trial << " slot " << i;
    }
    EXPECT_EQ(r.stats.abandoned, 0u) << "trial " << trial;
  }
}

TEST(ReliablePropertyTest, RetriesStayWithinAttemptBudget) {
  // The retry counter can never exceed (max_attempts - 1) per reliable send:
  // the backoff loop must be bounded, whatever the plan does. run_slots
  // configures max_attempts = 12, so the bound is 11 retries per send.
  Rng rng(Rng::derive(2026, "reliable-budget"));
  for (int trial = 0; trial < 25; ++trial) {
    const FaultPlan plan = random_message_plan(rng);
    const SlotRun r = run_slots(plan, /*reliable=*/true);
    ASSERT_TRUE(r.idle) << "trial " << trial;
    EXPECT_LE(r.stats.retries, r.stats.reliable_sends * 11u)
        << "trial " << trial << " plan seed " << plan.seed;
  }
}

TEST(ReliablePropertyTest, DedupIsIdempotentUnderPureDuplication) {
  // With only duplication armed (nothing dropped or delayed), retries are
  // never needed: dedup alone must absorb every extra arrival, for any seed.
  Rng rng(Rng::derive(2026, "reliable-dedup"));
  for (int trial = 0; trial < 25; ++trial) {
    FaultPlan p;
    p.seed = rng.next_u64();
    p.dup_prob = rng.uniform(0.3, 1.0);
    const SlotRun r = run_slots(p, /*reliable=*/true);
    ASSERT_TRUE(r.idle) << "trial " << trial;
    for (int h : r.hits) EXPECT_EQ(h, 1) << "trial " << trial;
    EXPECT_EQ(r.stats.abandoned, 0u) << "trial " << trial;
  }
}

TEST(ReliablePropertyTest, ReductionTotalsExactUnderRandomPlans) {
  // A tree reduction over a randomly faulted network must produce the exact
  // fault-free total (doubles: dedup means the same summands, same order).
  Rng rng(Rng::derive(2026, "reliable-reduce"));
  for (int trial = 0; trial < 10; ++trial) {
    const FaultPlan plan = random_message_plan(rng);
    Simulator sim(7, rel_test_machine());
    sim.set_fault_plan(plan);
    ReliableOptions ropts;
    ropts.max_attempts = 12;
    ReliableComm comm(sim, ropts);
    const EntryId e = sim.entries().add("reduce", WorkCategory::kComm);
    std::vector<int> pe_of;
    for (int pe = 0; pe < 7; ++pe) pe_of.push_back(pe);
    double result = -1.0;
    Reducer red(pe_of, e, [&](int, double total) { result = total; });
    red.set_reliable(&comm);
    for (int pe = 0; pe < 7; ++pe) {
      sim.inject(pe, {.fn = [&red, pe](ExecContext& ctx) {
                        red.contribute(ctx, pe, 0, 3.0 * pe + 0.25);
                      }});
    }
    sim.run();
    ASSERT_TRUE(sim.idle()) << "trial " << trial;
    EXPECT_DOUBLE_EQ(result, 3.0 * 21 + 7 * 0.25)
        << "trial " << trial << " plan seed " << plan.seed;
  }
}

TEST(ReliableReducerTest, TotalsExactUnderLossyNetwork) {
  for (std::uint64_t seed : {2u, 11u}) {
    Simulator sim(6, rel_test_machine());
    sim.set_fault_plan(lossy(seed));
    ReliableComm comm(sim);
    const EntryId e = sim.entries().add("reduce", WorkCategory::kComm);
    std::vector<int> pe_of;
    for (int pe = 0; pe < 6; ++pe) pe_of.push_back(pe);
    std::map<int, double> results;
    Reducer red(pe_of, e,
                [&](int round, double total) { results[round] = total; });
    red.set_reliable(&comm);
    for (int pe = 0; pe < 6; ++pe) {
      sim.inject(pe, {.fn = [&red, pe](ExecContext& ctx) {
                        red.contribute(ctx, pe, 0, 10.0 * (pe + 1));
                        red.contribute(ctx, pe, 1, 1.0);
                      }});
    }
    sim.run();
    ASSERT_TRUE(sim.idle()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(results[0], 210.0) << "seed " << seed;
    EXPECT_DOUBLE_EQ(results[1], 6.0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace scalemd
