#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rts/multicast.hpp"
#include "rts/reduction.hpp"
#include "rts/registry.hpp"

namespace scalemd {
namespace {

MachineModel test_machine() {
  MachineModel m;
  m.name = "test";
  m.send_overhead = 0.1;
  m.recv_overhead = 0.05;
  m.latency = 1.0;
  m.byte_time = 0.0;
  m.pack_byte_cost = 0.001;  // per byte
  m.local_overhead = 0.01;
  return m;
}

TEST(ChareDirectoryTest, AddLookupMigrate) {
  ChareDirectory dir;
  const auto a = dir.add(3);
  const auto b = dir.add(7);
  EXPECT_EQ(dir.pe_of(a), 3);
  EXPECT_EQ(dir.pe_of(b), 7);
  dir.migrate(a, 5);
  EXPECT_EQ(dir.pe_of(a), 5);
  EXPECT_EQ(dir.count(), 2u);
}

TEST(MulticastTest, DeliversToAllDestinations) {
  Simulator sim(5, test_machine());
  std::vector<int> received;
  const std::vector<int> dests{1, 2, 3, 4};
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   multicast(ctx, dests, 100, /*optimized=*/true, [&](int pe) {
                     TaskMsg m;
                     m.fn = [&received, pe](ExecContext&) { received.push_back(pe); };
                     return m;
                   });
                 }});
  sim.run();
  EXPECT_EQ(received, dests);
}

TEST(MulticastTest, OptimizedPacksOnce) {
  // Sender-side cost difference: naive charges pack per destination.
  const std::vector<int> dests{1, 2, 3, 4};
  auto sender_busy = [&](bool optimized) {
    Simulator sim(5, test_machine());
    sim.inject(0, {.fn = [&](ExecContext& ctx) {
                     multicast(ctx, dests, 1000, optimized, [&](int) {
                       TaskMsg m;
                       m.fn = [](ExecContext&) {};
                       return m;
                     });
                   }});
    sim.run();
    return sim.pe_busy(0);
  };
  const double naive = sender_busy(false);
  const double opt = sender_busy(true);
  // pack = 1000 bytes * 0.001 = 1.0; sends = 4 * 0.1 = 0.4.
  EXPECT_NEAR(naive, 4 * 1.0 + 0.4, 1e-9);
  EXPECT_NEAR(opt, 1.0 + 0.4, 1e-9);
}

TEST(MulticastTest, EmptyDestinationsChargesNothing) {
  Simulator sim(2, test_machine());
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   multicast(ctx, {}, 1000, true, [](int) { return TaskMsg{}; });
                 }});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.pe_busy(0), 0.0);
}

TEST(ReducerTest, SingleRoundTotalsAcrossPes) {
  Simulator sim(4, test_machine());
  const EntryId e = sim.entries().add("reduce", WorkCategory::kComm);
  // Contributors 0..7 on PEs 0..3 (two each).
  std::vector<int> pe_of{0, 0, 1, 1, 2, 2, 3, 3};
  double result = -1.0;
  int result_round = -1;
  Reducer red(pe_of, e, [&](int round, double total) {
    result = total;
    result_round = round;
  });
  for (int c = 0; c < 8; ++c) {
    const int pe = pe_of[static_cast<std::size_t>(c)];
    sim.inject(pe, {.fn = [&red, c](ExecContext& ctx) {
                      ctx.charge(0.01 * c);
                      red.contribute(ctx, c, 0, 1.0 + c);
                    }});
  }
  sim.run();
  EXPECT_EQ(result_round, 0);
  EXPECT_DOUBLE_EQ(result, 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
}

TEST(ReducerTest, MultipleRoundsIndependent) {
  Simulator sim(3, test_machine());
  const EntryId e = sim.entries().add("reduce", WorkCategory::kComm);
  std::vector<int> pe_of{0, 1, 2};
  std::map<int, double> results;
  Reducer red(pe_of, e, [&](int round, double total) { results[round] = total; });
  // Interleave rounds: each contributor contributes round 0 then round 1.
  for (int c = 0; c < 3; ++c) {
    sim.inject(c, {.fn = [&red, c](ExecContext& ctx) {
                     red.contribute(ctx, c, 0, 10.0 * (c + 1));
                     red.contribute(ctx, c, 1, 1.0);
                   }});
  }
  sim.run();
  EXPECT_DOUBLE_EQ(results[0], 60.0);
  EXPECT_DOUBLE_EQ(results[1], 3.0);
}

TEST(ReducerTest, ContributorsOnSinglePe) {
  Simulator sim(4, test_machine());
  const EntryId e = sim.entries().add("reduce", WorkCategory::kComm);
  std::vector<int> pe_of{2, 2, 2};
  double result = -1.0;
  Reducer red(pe_of, e, [&](int, double total) { result = total; });
  sim.inject(2, {.fn = [&](ExecContext& ctx) {
                   red.contribute(ctx, 0, 0, 1.0);
                   red.contribute(ctx, 1, 0, 2.0);
                   red.contribute(ctx, 2, 0, 4.0);
                 }});
  sim.run();
  EXPECT_DOUBLE_EQ(result, 7.0);
}

TEST(ReducerTest, TreeUsesMessagesBetweenPes) {
  Simulator sim(8, test_machine());
  const EntryId e = sim.entries().add("reduce", WorkCategory::kComm);
  std::vector<int> pe_of;
  for (int pe = 0; pe < 8; ++pe) pe_of.push_back(pe);
  double result = -1.0;
  Reducer red(pe_of, e, [&](int, double total) { result = total; });
  for (int pe = 0; pe < 8; ++pe) {
    sim.inject(pe, {.fn = [&red, pe](ExecContext& ctx) {
                      red.contribute(ctx, pe, 0, 1.0);
                    }});
  }
  sim.run();
  EXPECT_DOUBLE_EQ(result, 8.0);
  // 7 tree edges -> 7 remote messages.
  EXPECT_EQ(sim.remote_messages(), 7u);
  // Completion needs at least the depth of the tree in latency.
  EXPECT_GE(sim.time(), 2.0);
}

}  // namespace
}  // namespace scalemd
