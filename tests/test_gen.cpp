#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gen/chain.hpp"
#include "gen/membrane.hpp"
#include "gen/placement.hpp"
#include "gen/presets.hpp"
#include "gen/water_box.hpp"
#include "seq/cell_list.hpp"
#include "topo/exclusions.hpp"

namespace scalemd {
namespace {

TEST(PlacementGridTest, RejectsCloseAcceptsFar) {
  PlacementGrid grid({20, 20, 20}, 2.0);
  EXPECT_TRUE(grid.is_free({10, 10, 10}));
  grid.add({10, 10, 10});
  EXPECT_FALSE(grid.is_free({10.5, 10, 10}));
  EXPECT_FALSE(grid.is_free({11.2, 11.2, 10}));  // dist ~1.7
  EXPECT_TRUE(grid.is_free({12.5, 10, 10}));
  EXPECT_EQ(grid.size(), 1u);
}

TEST(PlacementGridTest, WorksAcrossCellBoundaries) {
  PlacementGrid grid({20, 20, 20}, 2.0);
  grid.add({3.9, 4.1, 4.0});  // near a cell corner
  EXPECT_FALSE(grid.is_free({4.1, 3.9, 4.0}));
}

TEST(PlacementGridTest, MinDist2ReportsNearest) {
  PlacementGrid grid({20, 20, 20}, 2.5);
  EXPECT_DOUBLE_EQ(grid.min_dist2({10, 10, 10}), 2.5 * 2.5);
  grid.add({10, 10, 10});
  EXPECT_NEAR(grid.min_dist2({11, 10, 10}), 1.0, 1e-12);
}

TEST(WaterTest, GeometryIsExact) {
  Molecule mol;
  mol.box = {20, 20, 20};
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.4);
  Rng rng(3);
  const int o = add_water(mol, ff, grid, {10, 10, 10}, rng);
  ASSERT_EQ(mol.atom_count(), 3);
  const Vec3 po = mol.positions()[static_cast<std::size_t>(o)];
  const Vec3 h1 = mol.positions()[1];
  const Vec3 h2 = mol.positions()[2];
  EXPECT_NEAR(norm(h1 - po), geom::kWaterOH, 1e-12);
  EXPECT_NEAR(norm(h2 - po), geom::kWaterOH, 1e-12);
  const double cos_t = dot(h1 - po, h2 - po) / (geom::kWaterOH * geom::kWaterOH);
  EXPECT_NEAR(std::acos(cos_t) * 180 / M_PI, geom::kWaterAngleDeg, 1e-9);
  // Net charge zero.
  double q = 0;
  for (const Atom& a : mol.atoms()) q += a.charge;
  EXPECT_NEAR(q, 0.0, 1e-12);
}

TEST(WaterTest, BoxDensityNearLiquidWater) {
  const Molecule mol = make_water_box({30, 30, 30}, 11);
  const double density = mol.atom_count() / (30.0 * 30.0 * 30.0);
  EXPECT_GT(density, 0.07);
  EXPECT_LT(density, 0.12);
  EXPECT_EQ(mol.atom_count() % 3, 0);
  EXPECT_NO_THROW(mol.validate());
}

TEST(ChainTest, BondsHaveExactRestLength) {
  Molecule mol;
  mol.box = {60, 60, 60};
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(5);
  ChainOptions opt;
  opt.beads = 200;
  opt.lo = {2, 2, 2};
  opt.hi = {58, 58, 58};
  const int added = add_chain(mol, ff, grid, opt, rng);
  EXPECT_GE(added, 200);
  int exact = 0, total = 0;
  for (const Bond& b : mol.bonds()) {
    const double r = norm(mol.positions()[static_cast<std::size_t>(b.a)] -
                          mol.positions()[static_cast<std::size_t>(b.b)]);
    ++total;
    if (std::fabs(r - geom::kChainBond) < 1e-9) ++exact;
  }
  // Nearly every bond sits at its rest length (wall reflections may distort
  // a handful of joints).
  EXPECT_GT(exact, total * 8 / 10);
}

TEST(ChainTest, ChainHasFullBondedTopology) {
  Molecule mol;
  mol.box = {60, 60, 60};
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(5);
  ChainOptions opt;
  opt.beads = 100;
  opt.lo = {2, 2, 2};
  opt.hi = {58, 58, 58};
  add_chain(mol, ff, grid, opt, rng);
  EXPECT_GE(mol.bonds().size(), 99u);
  EXPECT_GE(mol.angles().size(), 98u);
  EXPECT_GE(mol.dihedrals().size(), 97u);
  EXPECT_GT(mol.impropers().size(), 0u);
  EXPECT_NO_THROW(mol.validate());
}

TEST(ChainTest, StaysInsideRegion) {
  Molecule mol;
  mol.box = {60, 60, 60};
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(9);
  ChainOptions opt;
  opt.beads = 300;
  opt.lo = {20, 20, 20};
  opt.hi = {40, 40, 40};
  add_chain(mol, ff, grid, opt, rng);
  for (const Vec3& p : mol.positions()) {
    EXPECT_GE(p.x, 19.9);
    EXPECT_LT(p.x, 40.1);
    EXPECT_GE(p.z, 19.9);
    EXPECT_LT(p.z, 40.1);
  }
}

TEST(MembraneTest, LipidIsZwitterionicWithTails) {
  Molecule mol;
  mol.box = {40, 40, 60};
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(2);
  LipidOptions opt;
  const int added = add_lipid(mol, ff, grid, {20, 20, 45}, {0, 0, -1}, opt, rng);
  EXPECT_EQ(added, 2 + 2 * opt.tail_len);
  double q = 0;
  for (const Atom& a : mol.atoms()) q += a.charge;
  EXPECT_NEAR(q, 0.0, 1e-12);
  // Tails extend downward from the head.
  double min_z = 60;
  for (const Vec3& p : mol.positions()) min_z = std::min(min_z, p.z);
  EXPECT_LT(min_z, 35.0);
  EXPECT_NO_THROW(mol.validate());
}

TEST(MembraneTest, BilayerHasTwoLeaflets) {
  Molecule mol;
  mol.box = {60, 60, 60};
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(4);
  add_bilayer_disc(mol, ff, grid, {30, 30, 30}, 15.0, 8.0, 14.0, LipidOptions{}, rng);
  EXPECT_GT(mol.atom_count(), 100);
  int upper_heads = 0, lower_heads = 0;
  for (int i = 0; i < mol.atom_count(); ++i) {
    if (mol.atoms()[static_cast<std::size_t>(i)].charge > 0.5) {
      const double z = mol.positions()[static_cast<std::size_t>(i)].z;
      if (z > 40.0) ++upper_heads;
      if (z < 20.0) ++lower_heads;
    }
  }
  EXPECT_GT(upper_heads, 3);
  EXPECT_GT(lower_heads, 3);
}

TEST(PresetTest, ApoA1ExactCountAndPatchGrid) {
  const Molecule mol = apoa1_like();
  EXPECT_EQ(mol.atom_count(), 92'224);
  const CellGrid grid(mol.box, mol.suggested_patch_size);
  EXPECT_EQ(grid.nx(), 7);
  EXPECT_EQ(grid.ny(), 7);
  EXPECT_EQ(grid.nz(), 5);
  EXPECT_EQ(grid.cell_count(), 245);
  EXPECT_NO_THROW(mol.validate());
}

TEST(PresetTest, Bc1ExactCountAndPatchGrid) {
  const Molecule mol = bc1_like();
  EXPECT_EQ(mol.atom_count(), 206'617);
  const CellGrid grid(mol.box, mol.suggested_patch_size);
  EXPECT_EQ(grid.cell_count(), 378);  // 7 x 6 x 9, as published
  EXPECT_NO_THROW(mol.validate());
}

TEST(PresetTest, BrExactCountAndPatchGrid) {
  const Molecule mol = br_like();
  EXPECT_EQ(mol.atom_count(), 3'762);
  const CellGrid grid(mol.box, mol.suggested_patch_size);
  EXPECT_EQ(grid.cell_count(), 36);  // 3 x 4 x 3, as published
  EXPECT_NO_THROW(mol.validate());
}

TEST(PresetTest, DeterministicForSeed) {
  const Molecule a = br_like(3);
  const Molecule b = br_like(3);
  ASSERT_EQ(a.atom_count(), b.atom_count());
  for (int i = 0; i < a.atom_count(); ++i) {
    EXPECT_EQ(a.positions()[static_cast<std::size_t>(i)],
              b.positions()[static_cast<std::size_t>(i)]);
  }
  const Molecule c = br_like(4);
  bool any_differs = false;
  for (int i = 0; i < a.atom_count() && !any_differs; ++i) {
    any_differs = !(a.positions()[static_cast<std::size_t>(i)] ==
                    c.positions()[static_cast<std::size_t>(i)]);
  }
  EXPECT_TRUE(any_differs);
}

TEST(PresetTest, ApoA1IsChargeNeutralish) {
  const Molecule mol = apoa1_like();
  double q = 0;
  for (const Atom& a : mol.atoms()) q += a.charge;
  // Waters and lipids are neutral; chain termini and ions can leave a small
  // residue.
  EXPECT_LT(std::fabs(q), 10.0);
}

TEST(PresetTest, ApoA1HasHeterogeneousDensity) {
  // The lipid/protein core must be denser in bonded terms than the water
  // shell — the source of the load imbalance the paper's LB fights.
  const Molecule mol = apoa1_like();
  const CellGrid grid(mol.box, mol.suggested_patch_size);
  std::vector<int> bonded_per_cell(static_cast<std::size_t>(grid.cell_count()), 0);
  for (const Dihedral& d : mol.dihedrals()) {
    ++bonded_per_cell[static_cast<std::size_t>(
        grid.cell_of(mol.positions()[static_cast<std::size_t>(d.a)]))];
  }
  int max_terms = 0, occupied = 0;
  for (int c : bonded_per_cell) {
    max_terms = std::max(max_terms, c);
    occupied += c > 0;
  }
  // Dihedrals concentrate in the core cells; many water-only cells have none.
  EXPECT_LT(occupied, grid.cell_count());
  EXPECT_GT(max_terms, 50);
}

TEST(PresetTest, SmallSolvatedChainRespectsTarget) {
  for (int target : {600, 1500, 4200}) {
    const Molecule mol = small_solvated_chain(target, 5);
    EXPECT_EQ(mol.atom_count(), target);
    EXPECT_NO_THROW(mol.validate());
  }
}

TEST(PresetTest, ExclusionsScaleLinearly) {
  // Sanity on topology size: exclusions should be O(atoms), not quadratic.
  const Molecule mol = br_like();
  const ExclusionTable t = ExclusionTable::build(mol);
  EXPECT_LT(t.full_entry_count(),
            static_cast<std::size_t>(mol.atom_count()) * 12);
  EXPECT_GT(t.full_entry_count(), static_cast<std::size_t>(mol.atom_count()));
}

}  // namespace
}  // namespace scalemd
