// Property-based (parameterized) suites: invariants checked across swept
// parameter spaces rather than single examples.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ff/switching.hpp"
#include "lb/greedy.hpp"
#include "lb/naive.hpp"
#include "lb/rcb.hpp"
#include "lb/refine.hpp"
#include "seq/cell_list.hpp"
#include "topo/exclusions.hpp"
#include "topo/molecule.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace scalemd {
namespace {

// ---------------------------------------------------------------------------
// Exclusions vs a brute-force reference, over random bond graphs
// ---------------------------------------------------------------------------

class ExclusionProperty : public ::testing::TestWithParam<std::uint64_t> {};

/// O(n^2) reference: shortest bond-path length by Floyd-Warshall.
std::vector<std::vector<int>> bond_distances(const Molecule& m) {
  const int n = m.atom_count();
  const int inf = 1 << 20;
  std::vector<std::vector<int>> d(static_cast<std::size_t>(n),
                                  std::vector<int>(static_cast<std::size_t>(n), inf));
  for (int i = 0; i < n; ++i) d[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
  for (const Bond& b : m.bonds()) {
    d[static_cast<std::size_t>(b.a)][static_cast<std::size_t>(b.b)] = 1;
    d[static_cast<std::size_t>(b.b)][static_cast<std::size_t>(b.a)] = 1;
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            std::min(d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                     d[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
                         d[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]);
      }
    }
  }
  return d;
}

TEST_P(ExclusionProperty, MatchesShortestPathClassification) {
  Rng rng(GetParam());
  Molecule m;
  m.box = {100, 100, 100};
  const int t = m.params.add_lj_type(0.1, 2.0);
  const int bp = m.params.add_bond_param(100, 1.5);
  m.params.finalize();
  const int n = 12 + static_cast<int>(rng.uniform_index(20));
  for (int i = 0; i < n; ++i) m.add_atom({12, 0, t}, rng.point_in_box({90, 90, 90}));
  // Random sparse bond graph (skip duplicates and self bonds).
  std::set<std::pair<int, int>> edges;
  const int nbonds = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(2 * n)));
  for (int e = 0; e < nbonds; ++e) {
    const int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    if (!edges.insert({std::min(a, b), std::max(a, b)}).second) continue;
    m.add_bond(a, b, bp);
  }

  const ExclusionTable table = ExclusionTable::build(m);
  const auto dist = bond_distances(m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const int d = dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      const ExclusionKind expected = (i == j || d <= 2) ? ExclusionKind::kFull
                                     : d == 3           ? ExclusionKind::kModified14
                                                        : ExclusionKind::kNone;
      EXPECT_EQ(table.check(i, j), expected) << i << "," << j << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ExclusionProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Switching function invariants over (switch_dist, cutoff) combinations
// ---------------------------------------------------------------------------

class SwitchingProperty
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SwitchingProperty, SmoothMonotoneAndBounded) {
  const auto [rs, rc] = GetParam();
  const SwitchFunction s(rs, rc);
  double prev = 1.0;
  for (double r = 0.5; r < rc + 2.0; r += 0.01) {
    const double v = s.value(r * r);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_LE(v, prev + 1e-12);  // monotone non-increasing in r
    prev = v;
    // Derivative consistency everywhere.
    const double h = 1e-7;
    const double fd = (s.value(r * r + h) - s.value(r * r - h)) / (2 * h);
    EXPECT_NEAR(s.dvalue_dr2(r * r), fd, 1e-5 + 1e-3 * std::fabs(fd));
  }
  EXPECT_DOUBLE_EQ(s.value(rs * rs), 1.0);
  EXPECT_NEAR(s.value(rc * rc), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(CutoffCombos, SwitchingProperty,
                         ::testing::Values(std::pair{8.0, 10.0},
                                           std::pair{10.0, 12.0},
                                           std::pair{6.0, 12.0},
                                           std::pair{11.5, 12.0},
                                           std::pair{1.0, 3.0}));

// ---------------------------------------------------------------------------
// RCB invariants over random weighted point clouds
// ---------------------------------------------------------------------------

class RcbProperty : public ::testing::TestWithParam<int> {};

TEST_P(RcbProperty, BalancedAndComplete) {
  const int pes = GetParam();
  Rng rng(static_cast<std::uint64_t>(pes) * 7919);
  std::vector<Vec3> centers;
  std::vector<double> weights;
  const int n = pes * 8;
  for (int i = 0; i < n; ++i) {
    centers.push_back(rng.point_in_box({100, 80, 60}));
    weights.push_back(rng.uniform(0.5, 2.0));
  }
  const auto map = rcb_patch_map(centers, weights, pes);
  ASSERT_EQ(map.size(), centers.size());

  std::vector<double> load(static_cast<std::size_t>(pes), 0.0);
  for (std::size_t i = 0; i < map.size(); ++i) {
    ASSERT_GE(map[i], 0);
    ASSERT_LT(map[i], pes);
    load[static_cast<std::size_t>(map[i])] += weights[i];
  }
  // Every PE used, and no PE more than ~3x the average weight (RCB's
  // guarantee is coarse for small item counts).
  const Summary s = summarize(load);
  EXPECT_GT(s.min, 0.0);
  EXPECT_LT(s.max, 3.0 * s.mean);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, RcbProperty,
                         ::testing::Values(2, 3, 4, 7, 8, 16, 31, 64));

// ---------------------------------------------------------------------------
// Greedy + refine invariants over random LB problems
// ---------------------------------------------------------------------------

struct LbCase {
  int pes;
  int patches;
  std::uint64_t seed;
};

class LbProperty : public ::testing::TestWithParam<LbCase> {};

LbProblem random_problem(const LbCase& c) {
  Rng rng(c.seed);
  LbProblem p;
  p.num_pes = c.pes;
  p.background.assign(static_cast<std::size_t>(c.pes), 0.0);
  for (int pe = 0; pe < c.pes; ++pe) {
    p.background[static_cast<std::size_t>(pe)] = rng.uniform(0.0, 0.3);
  }
  for (int i = 0; i < c.patches; ++i) {
    p.patch_home.push_back(static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(c.pes))));
  }
  const int objs = c.patches * 6;
  for (int i = 0; i < objs; ++i) {
    LbObject o;
    o.load = rng.uniform(0.05, 1.5);
    o.patch_a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(c.patches)));
    if (rng.uniform() < 0.5) {
      o.patch_b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(c.patches)));
      if (o.patch_b == o.patch_a) o.patch_b = -1;
    }
    o.current_pe = p.patch_home[static_cast<std::size_t>(o.patch_a)];
    p.objects.push_back(o);
  }
  return p;
}

TEST_P(LbProperty, GreedyRefinePipelineInvariants) {
  const LbProblem p = random_problem(GetParam());
  const LbAssignment greedy = greedy_comm_map(p, 1.10);
  const LbAssignment refined = refine_map(p, greedy, 1.03);

  // Valid range.
  for (int pe : refined) {
    ASSERT_GE(pe, 0);
    ASSERT_LT(pe, p.num_pes);
  }
  // Refinement never raises the max load.
  EXPECT_LE(summarize(pe_loads(p, refined)).max,
            summarize(pe_loads(p, greedy)).max + 1e-12);
  // The pipeline beats both the identity and random placements.
  EXPECT_LE(summarize(pe_loads(p, refined)).max,
            summarize(pe_loads(p, identity_map(p))).max + 1e-12);
  EXPECT_LE(summarize(pe_loads(p, refined)).max,
            summarize(pe_loads(p, random_map(p))).max + 1e-12);
  // Proxy-aware greedy never uses more proxies than fully random placement.
  EXPECT_LE(count_proxies(p, greedy), count_proxies(p, random_map(p)));
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, LbProperty,
                         ::testing::Values(LbCase{4, 12, 1}, LbCase{8, 24, 2},
                                           LbCase{16, 16, 3}, LbCase{32, 64, 4},
                                           LbCase{64, 40, 5}, LbCase{128, 96, 6},
                                           LbCase{13, 29, 7}, LbCase{100, 245, 8}));

// ---------------------------------------------------------------------------
// Cell grid invariants across box shapes
// ---------------------------------------------------------------------------

class CellGridProperty
    : public ::testing::TestWithParam<std::pair<Vec3, double>> {};

TEST_P(CellGridProperty, NeighborRelationIsSymmetricAndLocal) {
  const auto [box, cell] = GetParam();
  const CellGrid g(box, cell);
  // Every atom position maps into a valid cell.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const int c = g.cell_of(rng.point_in_box(box));
    ASSERT_GE(c, 0);
    ASSERT_LT(c, g.cell_count());
  }
  // neighbor_pairs covers exactly the 26-neighborhood, each pair once.
  std::set<std::pair<int, int>> seen;
  for (const auto& [a, b] : g.neighbor_pairs()) {
    ASSERT_LT(a, b);
    ASSERT_TRUE(seen.insert({a, b}).second) << "duplicate pair";
    const Int3 ca = g.coords(a);
    const Int3 cb = g.coords(b);
    EXPECT_LE(std::abs(ca.x - cb.x), 1);
    EXPECT_LE(std::abs(ca.y - cb.y), 1);
    EXPECT_LE(std::abs(ca.z - cb.z), 1);
  }
  // Upstream sets partition the pair relation: (c, u) with u upstream of c
  // appears exactly once over all cells.
  std::size_t upstream_total = 0;
  for (int c = 0; c < g.cell_count(); ++c) {
    upstream_total += g.upstream_neighbors(c).size();
  }
  std::size_t dominance_pairs = 0;
  for (const auto& [a, b] : g.neighbor_pairs()) {
    const Int3 ca = g.coords(a);
    const Int3 cb = g.coords(b);
    const bool a_le_b = ca.x <= cb.x && ca.y <= cb.y && ca.z <= cb.z;
    const bool b_le_a = cb.x <= ca.x && cb.y <= ca.y && cb.z <= ca.z;
    if (a_le_b || b_le_a) ++dominance_pairs;
  }
  EXPECT_EQ(upstream_total, dominance_pairs);
}

INSTANTIATE_TEST_SUITE_P(
    Boxes, CellGridProperty,
    ::testing::Values(std::pair{Vec3{108, 108, 78}, 15.42},
                      std::pair{Vec3{38, 50.5, 38}, 12.6},
                      std::pair{Vec3{20, 20, 20}, 25.0},  // single cell
                      std::pair{Vec3{100, 10, 10}, 10.0},
                      std::pair{Vec3{33.3, 47.1, 61.9}, 11.7}));

}  // namespace
}  // namespace scalemd
