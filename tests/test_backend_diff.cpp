// Differential DES-equivalence suite: the discrete-event backend and the
// real-threads backend must produce bitwise-identical trajectories for every
// PE count, LB strategy, force kernel and worker count. The DES side is
// deterministic by construction; the threaded side is deterministic only if
// every floating-point fold in the runtime is order-canonicalized — these
// tests are what pins that property.
#include <gtest/gtest.h>

#include <string>

#include "check/golden.hpp"
#include "check/invariants.hpp"

namespace scalemd {
namespace {

Trajectory run_backend(const char* spec_name, int pes, BackendKind backend,
                       int threads, LbStrategyKind lb, NonbondedKernel kernel,
                       InvariantChecker* checker = nullptr) {
  const GoldenSpec* spec = find_golden_spec(spec_name);
  EXPECT_NE(spec, nullptr);
  ParallelGoldenOptions p;
  p.num_pes = pes;
  p.backend = backend;
  p.threads = threads;
  p.lb = lb;
  p.kernel = kernel;
  return record_parallel_trajectory(*spec, p, checker);
}

void expect_bitwise(const Trajectory& got, const Trajectory& ref,
                    const std::string& what) {
  CompareOptions bitwise;
  bitwise.mode = CompareMode::kUlp;
  bitwise.max_ulps = 0;
  const CompareResult r = compare_trajectories(got, ref, bitwise);
  EXPECT_TRUE(r.match) << what << ": " << r.message;
  EXPECT_EQ(r.worst, 0.0) << what << ": worst ulp deviation at " << r.where;
}

// ---------------------------------------------------------------------------
// The matrix: {2, 4, 8} PEs x {greedy, greedy+refine, none} LB x
// {scalar, tiled} kernel, DES vs threaded, bitwise.
// ---------------------------------------------------------------------------

struct DiffCase {
  int pes;
  LbStrategyKind lb;
  NonbondedKernel kernel;
};

const char* lb_tag(LbStrategyKind k) {
  switch (k) {
    case LbStrategyKind::kGreedy:
      return "greedy";
    case LbStrategyKind::kGreedyRefine:
      return "refine";
    case LbStrategyKind::kNone:
      return "none";
    default:
      return "other";
  }
}

std::string diff_case_name(const testing::TestParamInfo<DiffCase>& info) {
  return "pes" + std::to_string(info.param.pes) + "_" + lb_tag(info.param.lb) +
         (info.param.kernel == NonbondedKernel::kScalar ? "_scalar" : "_tiled");
}

class BackendDiffTest : public testing::TestWithParam<DiffCase> {};

TEST_P(BackendDiffTest, ThreadedMatchesDesBitwise) {
  const DiffCase& c = GetParam();
  const Trajectory des = run_backend("waterbox", c.pes, BackendKind::kSimulated,
                                     0, c.lb, c.kernel);
  const Trajectory thr = run_backend("waterbox", c.pes, BackendKind::kThreaded,
                                     4, c.lb, c.kernel);
  expect_bitwise(thr, des, "threaded vs DES");
}

constexpr DiffCase kDiffMatrix[] = {
    {2, LbStrategyKind::kGreedy, NonbondedKernel::kScalar},
    {2, LbStrategyKind::kGreedy, NonbondedKernel::kTiled},
    {2, LbStrategyKind::kGreedyRefine, NonbondedKernel::kScalar},
    {2, LbStrategyKind::kGreedyRefine, NonbondedKernel::kTiled},
    {2, LbStrategyKind::kNone, NonbondedKernel::kScalar},
    {2, LbStrategyKind::kNone, NonbondedKernel::kTiled},
    {4, LbStrategyKind::kGreedy, NonbondedKernel::kScalar},
    {4, LbStrategyKind::kGreedy, NonbondedKernel::kTiled},
    {4, LbStrategyKind::kGreedyRefine, NonbondedKernel::kScalar},
    {4, LbStrategyKind::kGreedyRefine, NonbondedKernel::kTiled},
    {4, LbStrategyKind::kNone, NonbondedKernel::kScalar},
    {4, LbStrategyKind::kNone, NonbondedKernel::kTiled},
    {8, LbStrategyKind::kGreedy, NonbondedKernel::kScalar},
    {8, LbStrategyKind::kGreedy, NonbondedKernel::kTiled},
    {8, LbStrategyKind::kGreedyRefine, NonbondedKernel::kScalar},
    {8, LbStrategyKind::kGreedyRefine, NonbondedKernel::kTiled},
    {8, LbStrategyKind::kNone, NonbondedKernel::kScalar},
    {8, LbStrategyKind::kNone, NonbondedKernel::kTiled},
};

INSTANTIATE_TEST_SUITE_P(PesLbKernelMatrix, BackendDiffTest,
                         testing::ValuesIn(kDiffMatrix), diff_case_name);

// The chain preset adds bonded terms, exclusions and 1-4 pairs (different
// compute kinds, different proxy topology).
TEST(BackendDiffTest, ChainThreadedMatchesDesBitwise) {
  const Trajectory des =
      run_backend("chain", 4, BackendKind::kSimulated, 0,
                  LbStrategyKind::kGreedyRefine, NonbondedKernel::kScalar);
  const Trajectory thr =
      run_backend("chain", 4, BackendKind::kThreaded, 4,
                  LbStrategyKind::kGreedyRefine, NonbondedKernel::kScalar);
  expect_bitwise(thr, des, "chain threaded vs DES");
}

// ---------------------------------------------------------------------------
// Thread-count invariance: 1, 2 and 8 workers must agree bitwise, with the
// physics-invariant checker clean on every run.
// ---------------------------------------------------------------------------

TEST(BackendDiffTest, ThreadCountIsBitwiseIrrelevant) {
  InvariantOptions iopts;
  // Short, coarse-dt recording runs: drift between sparse cycle
  // observations is not the property under test here.
  iopts.check_energy = false;

  Trajectory runs[3];
  const int workers[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    ViolationLog log;
    InvariantChecker checker(iopts, &log);
    runs[i] = run_backend("waterbox", 4, BackendKind::kThreaded, workers[i],
                          LbStrategyKind::kGreedyRefine,
                          NonbondedKernel::kScalar, &checker);
    EXPECT_TRUE(checker.ok()) << "workers=" << workers[i] << "\n"
                              << log.render();
    EXPECT_TRUE(log.empty()) << log.render();
    EXPECT_GT(checker.checks_run(), 0);
  }
  expect_bitwise(runs[1], runs[0], "2 workers vs 1 worker");
  expect_bitwise(runs[2], runs[0], "8 workers vs 1 worker");
}

// ---------------------------------------------------------------------------
// Physics sanity: the threaded backend is not just self-consistent — it
// reproduces the sequential reference trajectory (first frame dropped: the
// parallel runtime cannot observe pre-step state).
// ---------------------------------------------------------------------------

TEST(BackendDiffTest, ThreadedMatchesSequentialReference) {
  const GoldenSpec* spec = find_golden_spec("waterbox");
  ASSERT_NE(spec, nullptr);
  Trajectory ref = record_trajectory(*spec);
  ASSERT_FALSE(ref.frames.empty());
  ref.frames.erase(ref.frames.begin());

  const Trajectory thr =
      run_backend("waterbox", 4, BackendKind::kThreaded, 4,
                  LbStrategyKind::kNone, NonbondedKernel::kScalar);
  const CompareResult r = compare_trajectories(thr, ref, {});
  EXPECT_TRUE(r.match) << r.message;
}

}  // namespace
}  // namespace scalemd
