#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lb/greedy.hpp"
#include "lb/naive.hpp"
#include "lb/problem.hpp"
#include "lb/rcb.hpp"
#include "lb/refine.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace scalemd {
namespace {

/// A synthetic problem: `npatches` patches on a line, homes round-robin over
/// PEs, one self object per patch plus pair objects between neighbors, loads
/// drawn deterministically.
LbProblem make_problem(int num_pes, int npatches, std::uint64_t seed = 3) {
  Rng rng(seed);
  LbProblem p;
  p.num_pes = num_pes;
  p.background.assign(static_cast<std::size_t>(num_pes), 0.0);
  for (int i = 0; i < npatches; ++i) {
    p.patch_home.push_back(i % num_pes);
  }
  for (int i = 0; i < npatches; ++i) {
    LbObject self;
    self.load = rng.uniform(0.5, 2.0);
    self.current_pe = p.patch_home[static_cast<std::size_t>(i)];
    self.patch_a = i;
    p.objects.push_back(self);
    if (i + 1 < npatches) {
      LbObject pair;
      pair.load = rng.uniform(0.2, 3.0);
      pair.current_pe = p.patch_home[static_cast<std::size_t>(i)];
      pair.patch_a = i;
      pair.patch_b = i + 1;
      p.objects.push_back(pair);
    }
  }
  // Uneven background to exercise the strategies.
  for (int pe = 0; pe < num_pes; ++pe) {
    p.background[static_cast<std::size_t>(pe)] = (pe % 3 == 0) ? 0.8 : 0.1;
  }
  return p;
}

TEST(LbProblemTest, PeLoadsAndProxies) {
  LbProblem p;
  p.num_pes = 2;
  p.background = {1.0, 0.5};
  p.patch_home = {0, 1};
  p.objects.push_back({.load = 2.0, .current_pe = 0, .patch_a = 0, .patch_b = 1});
  const LbAssignment on0{0};
  EXPECT_DOUBLE_EQ(pe_loads(p, on0)[0], 3.0);
  EXPECT_DOUBLE_EQ(pe_loads(p, on0)[1], 0.5);
  // Object on PE 0 needs patch 1 (home 1) proxied there.
  EXPECT_EQ(count_proxies(p, on0), 1);
  // On PE 1, it needs patch 0 proxied.
  EXPECT_EQ(count_proxies(p, {1}), 1);
}

TEST(GreedyTest, BalancesLoadWithinThreshold) {
  const LbProblem p = make_problem(8, 40);
  const LbAssignment map = greedy_comm_map(p, 1.10);
  const auto loads = pe_loads(p, map);
  EXPECT_LE(imbalance_ratio(loads), 1.25);
}

TEST(GreedyTest, BeatsIdentityPlacement) {
  const LbProblem p = make_problem(16, 48);
  const auto before = imbalance_ratio(pe_loads(p, identity_map(p)));
  const auto after = imbalance_ratio(pe_loads(p, greedy_comm_map(p)));
  EXPECT_LT(after, before);
}

TEST(GreedyTest, CommAwareCreatesFewerProxiesThanBlind) {
  const LbProblem p = make_problem(12, 60);
  const int comm_proxies = count_proxies(p, greedy_comm_map(p));
  const int blind_proxies = count_proxies(p, greedy_nocomm_map(p));
  EXPECT_LT(comm_proxies, blind_proxies);
}

TEST(GreedyTest, AssignmentIsValid) {
  const LbProblem p = make_problem(5, 23);
  for (int pe : greedy_comm_map(p)) {
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, 5);
  }
}

TEST(GreedyTest, SinglePeMapsEverythingThere) {
  const LbProblem p = make_problem(1, 7);
  for (int pe : greedy_comm_map(p)) EXPECT_EQ(pe, 0);
}

TEST(RefineTest, NeverIncreasesMaxLoad) {
  const LbProblem p = make_problem(10, 50, 11);
  const LbAssignment start = random_map(p, 5);
  const auto before = summarize(pe_loads(p, start));
  const LbAssignment refined = refine_map(p, start, 1.03);
  const auto after = summarize(pe_loads(p, refined));
  EXPECT_LE(after.max, before.max + 1e-12);
}

TEST(RefineTest, FixesSingleHotSpot) {
  LbProblem p = make_problem(6, 30, 17);
  // Pile everything on PE 0.
  LbAssignment start(p.objects.size(), 0);
  const LbAssignment refined = refine_map(p, start, 1.05);
  const auto loads = pe_loads(p, refined);
  EXPECT_LE(imbalance_ratio(loads), 1.3);
  EXPECT_GT(migration_count(start, refined), 0);
}

TEST(RefineTest, BalancedInputUntouched) {
  LbProblem p;
  p.num_pes = 4;
  p.background.assign(4, 0.0);
  p.patch_home = {0, 1, 2, 3};
  for (int i = 0; i < 4; ++i) {
    p.objects.push_back({.load = 1.0, .current_pe = i, .patch_a = i});
  }
  const LbAssignment start{0, 1, 2, 3};
  const LbAssignment refined = refine_map(p, start, 1.05);
  EXPECT_EQ(migration_count(start, refined), 0);
}

TEST(RefineTest, RefinementAfterGreedyMovesLittle) {
  const LbProblem p = make_problem(12, 60, 23);
  const LbAssignment greedy = greedy_comm_map(p, 1.10);
  const LbAssignment refined = refine_map(p, greedy, 1.03);
  // The paper: the second cycle results in "only a few additional object
  // migrations".
  EXPECT_LE(migration_count(greedy, refined),
            static_cast<int>(p.objects.size()) / 4);
}

TEST(RcbTest, RoundRobinWhenMorePesThanPatches) {
  std::vector<Vec3> centers{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  std::vector<double> weights{1, 1, 1};
  const auto map = rcb_patch_map(centers, weights, 9);
  EXPECT_EQ(map, (std::vector<int>{0, 3, 6}));
}

TEST(RcbTest, SplitsWeightEvenly) {
  // 8 unit-weight patches on a line over 2 PEs: 4 and 4, spatially compact.
  std::vector<Vec3> centers;
  std::vector<double> weights;
  for (int i = 0; i < 8; ++i) {
    centers.push_back({static_cast<double>(i), 0, 0});
    weights.push_back(1.0);
  }
  const auto map = rcb_patch_map(centers, weights, 2);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(map[static_cast<std::size_t>(i)], 0);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(map[static_cast<std::size_t>(i)], 1);
}

TEST(RcbTest, NeighborsLandTogetherIn3d) {
  // 4x4x4 grid of patches over 8 PEs: each PE should get a 2x2x2 block.
  std::vector<Vec3> centers;
  std::vector<double> weights;
  for (int z = 0; z < 4; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        centers.push_back({x + 0.5, y + 0.5, z + 0.5});
        weights.push_back(1.0);
      }
    }
  }
  const auto map = rcb_patch_map(centers, weights, 8);
  // Every PE gets exactly 8 patches.
  std::vector<int> counts(8, 0);
  for (int pe : map) ++counts[static_cast<std::size_t>(pe)];
  for (int c : counts) EXPECT_EQ(c, 8);
  // Patches on one PE are spatially compact: max pairwise distance within a
  // 2x2x2 block is sqrt(3+3+3) units... allow the block diagonal.
  for (int pe = 0; pe < 8; ++pe) {
    for (std::size_t i = 0; i < map.size(); ++i) {
      for (std::size_t j = i + 1; j < map.size(); ++j) {
        if (map[i] == pe && map[j] == pe) {
          EXPECT_LE(norm(centers[i] - centers[j]), std::sqrt(3.0) + 1e-9);
        }
      }
    }
  }
}

TEST(RcbTest, WeightedSplitFollowsWeight) {
  // One very heavy patch: it should sit alone on one PE.
  std::vector<Vec3> centers{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}};
  std::vector<double> weights{1, 1, 1, 10};
  const auto map = rcb_patch_map(centers, weights, 2);
  EXPECT_EQ(map[3], 1);
  EXPECT_EQ(map[0], 0);
  EXPECT_EQ(map[1], 0);
  EXPECT_EQ(map[2], 0);
}

// ---------------------------------------------------------------------------
// Randomized strategy properties: on arbitrary instances, the strategies
// must never do worse than the placements they claim to improve, and
// refinement must respect its move budget.
// ---------------------------------------------------------------------------

/// A fully randomized instance — unlike make_problem, sizes, homes, loads
/// and patch wiring all vary with the seed.
LbProblem random_problem(std::uint64_t seed) {
  Rng rng(seed);
  LbProblem p;
  p.num_pes = 1 + static_cast<int>(rng.uniform(0.0, 15.0));
  const int npatches = 1 + static_cast<int>(rng.uniform(0.0, 60.0));
  p.background.resize(static_cast<std::size_t>(p.num_pes));
  for (double& b : p.background) b = rng.uniform(0.0, 1.0);
  for (int i = 0; i < npatches; ++i) {
    p.patch_home.push_back(static_cast<int>(rng.uniform(0.0, p.num_pes - 1e-9)));
  }
  const int nobjects = 1 + static_cast<int>(rng.uniform(0.0, 120.0));
  for (int i = 0; i < nobjects; ++i) {
    LbObject o;
    o.load = rng.uniform(0.01, 5.0);
    o.current_pe = static_cast<int>(rng.uniform(0.0, p.num_pes - 1e-9));
    o.patch_a = static_cast<int>(rng.uniform(0.0, npatches - 1e-9));
    if (rng.uniform(0.0, 1.0) < 0.5) {
      o.patch_b = static_cast<int>(rng.uniform(0.0, npatches - 1e-9));
    }
    p.objects.push_back(o);
  }
  return p;
}

double max_load(const LbProblem& p, const LbAssignment& map) {
  const auto loads = pe_loads(p, map);
  return *std::max_element(loads.begin(), loads.end());
}

TEST(LbPropertyTest, GreedyNeverWorseThanStaticPlacement) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const LbProblem p = random_problem(seed);
    const double naive = max_load(p, identity_map(p));
    EXPECT_LE(max_load(p, greedy_comm_map(p)), naive + 1e-9) << "seed " << seed;
    EXPECT_LE(max_load(p, greedy_nocomm_map(p)), naive + 1e-9) << "seed " << seed;
  }
}

TEST(LbPropertyTest, RefineNeverIncreasesMaxLoadOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const LbProblem p = random_problem(seed);
    const LbAssignment start = random_map(p, seed * 7 + 1);
    const double before = max_load(p, start);
    EXPECT_LE(max_load(p, refine_map(p, start, 1.03)), before + 1e-9)
        << "seed " << seed;
  }
}

TEST(LbPropertyTest, RefineAfterGreedyNeverWorseThanGreedyAlone) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const LbProblem p = random_problem(seed);
    const LbAssignment greedy = greedy_comm_map(p);
    const double greedy_max = max_load(p, greedy);
    EXPECT_LE(max_load(p, refine_map(p, greedy, 1.03)), greedy_max + 1e-9)
        << "seed " << seed;
  }
}

TEST(LbPropertyTest, RefineRespectsMoveBudgetAndTerminates) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const LbProblem p = random_problem(seed);
    const LbAssignment start = random_map(p, seed * 13 + 5);
    for (int budget : {0, 1, 3}) {
      const LbAssignment refined = refine_map(p, start, 1.01, budget);
      EXPECT_LE(migration_count(start, refined), budget)
          << "seed " << seed << " budget " << budget;
    }
    // A hostile threshold (everything counts as overloaded) must still
    // terminate and respect the monotonicity contract.
    const LbAssignment tight = refine_map(p, start, 1.0);
    EXPECT_LE(max_load(p, tight), max_load(p, start) + 1e-9) << "seed " << seed;
  }
}

TEST(NaiveTest, RandomMapInRangeAndDeterministic) {
  const LbProblem p = make_problem(7, 20);
  const auto a = random_map(p, 42);
  const auto b = random_map(p, 42);
  EXPECT_EQ(a, b);
  for (int pe : a) {
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, 7);
  }
}

}  // namespace
}  // namespace scalemd
