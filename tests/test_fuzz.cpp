// Unit tests of the scenario-fuzzing subsystem: spec generation and
// round-trip, validation rules, the differential evaluator on known-good and
// known-bad specs, the shrinker, and the repro read/write cycle (see
// EXPERIMENTS.md "Scenario fuzzing").

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/differential.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"
#include "gen/test_systems.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

ScenarioSpec small_clean_spec() {
  ScenarioSpec spec;
  spec.seed = 42;
  spec.kind = TestSystemKind::kWaterBox;
  spec.box = 12.0;
  spec.num_pes = 2;
  spec.threads = 2;
  spec.cycles = 2;
  spec.steps = 1;
  return spec;
}

// --- generation -------------------------------------------------------------

TEST(ScenarioGenerateTest, IsDeterministicInSeedAndIndex) {
  for (int i = 0; i < 20; ++i) {
    const ScenarioSpec a = generate_scenario(7, i);
    const ScenarioSpec b = generate_scenario(7, i);
    EXPECT_EQ(serialize_scenario(a), serialize_scenario(b)) << "index " << i;
  }
  EXPECT_NE(serialize_scenario(generate_scenario(7, 0)),
            serialize_scenario(generate_scenario(7, 1)));
  EXPECT_NE(serialize_scenario(generate_scenario(7, 0)),
            serialize_scenario(generate_scenario(8, 0)));
}

TEST(ScenarioGenerateTest, EveryGeneratedSpecValidates) {
  for (int i = 0; i < 100; ++i) {
    const ScenarioSpec spec = generate_scenario(3, i);
    EXPECT_EQ(validate_scenario(spec), "") << "index " << i << ":\n"
                                           << serialize_scenario(spec);
  }
}

// --- serialize / parse round-trip -------------------------------------------

TEST(ScenarioRoundTripTest, GeneratedSpecsSurviveExactly) {
  for (int i = 0; i < 50; ++i) {
    const ScenarioSpec spec = generate_scenario(11, i);
    const std::string text = serialize_scenario(spec);
    ScenarioSpec back;
    FaultPlanParseError error;
    ASSERT_TRUE(parse_scenario(text, "<mem>", back, error))
        << "index " << i << ": " << error.render();
    EXPECT_EQ(serialize_scenario(back), text) << "index " << i;
  }
}

TEST(ScenarioRoundTripTest, ProcessWorkersRoundTrips) {
  ScenarioSpec spec = small_clean_spec();
  spec.process_workers = 3;
  const std::string text = serialize_scenario(spec);
  EXPECT_NE(text.find("process-workers 3"), std::string::npos);
  ScenarioSpec back;
  FaultPlanParseError error;
  ASSERT_TRUE(parse_scenario(text, "<mem>", back, error)) << error.render();
  EXPECT_EQ(back.process_workers, 3);

  // Default (0) stays out of the text entirely: old repro files and new
  // parsers agree on the schema.
  spec.process_workers = 0;
  EXPECT_EQ(serialize_scenario(spec).find("process-workers"),
            std::string::npos);
}

TEST(ScenarioRoundTripTest, DefectFlagRoundTrips) {
  ScenarioSpec spec = small_clean_spec();
  spec.inject_defect = true;
  const std::string text = serialize_scenario(spec);
  EXPECT_NE(text.find("defect arrival-order"), std::string::npos);
  ScenarioSpec back;
  FaultPlanParseError error;
  ASSERT_TRUE(parse_scenario(text, "<mem>", back, error)) << error.render();
  EXPECT_TRUE(back.inject_defect);
}

TEST(ScenarioRoundTripTest, PmeFieldsRoundTrip) {
  ScenarioSpec spec = small_clean_spec();
  spec.full_elec = true;
  spec.pme_slabs = 3;
  spec.pme_dedicated = 1;
  const std::string text = serialize_scenario(spec);
  EXPECT_NE(text.find("full-elec 1"), std::string::npos);
  EXPECT_NE(text.find("pme-slabs 3"), std::string::npos);
  EXPECT_NE(text.find("pme-dedicated 1"), std::string::npos);
  ScenarioSpec back;
  FaultPlanParseError error;
  ASSERT_TRUE(parse_scenario(text, "<mem>", back, error)) << error.render();
  EXPECT_TRUE(back.full_elec);
  EXPECT_EQ(back.pme_slabs, 3);
  EXPECT_EQ(back.pme_dedicated, 1);

  // Defaults stay out of the text: old repro files and new parsers agree.
  spec = small_clean_spec();
  const std::string plain = serialize_scenario(spec);
  EXPECT_EQ(plain.find("full-elec"), std::string::npos);
  EXPECT_EQ(plain.find("pme-"), std::string::npos);
}

TEST(ScenarioParseTest, RejectsUnknownKeysWithLocation) {
  ScenarioSpec spec;
  FaultPlanParseError error;
  const std::string text = serialize_scenario(small_clean_spec()) + "bogus 1\n";
  EXPECT_FALSE(parse_scenario(text, "bad.txt", spec, error));
  EXPECT_EQ(error.file, "bad.txt");
  EXPECT_GT(error.line, 0);
}

TEST(ScenarioParseTest, LeavesSpecUntouchedOnFailure) {
  ScenarioSpec spec = small_clean_spec();
  const std::string before = serialize_scenario(spec);
  FaultPlanParseError error;
  EXPECT_FALSE(parse_scenario("pes not-a-number\n", "<mem>", spec, error));
  EXPECT_EQ(serialize_scenario(spec), before);
}

// --- validation -------------------------------------------------------------

TEST(ScenarioValidateTest, RejectsTiledThreadsKernel) {
  ScenarioSpec spec = small_clean_spec();
  spec.kernel = NonbondedKernel::kTiledThreads;
  EXPECT_NE(validate_scenario(spec), "");
}

TEST(ScenarioValidateTest, RejectsFailuresWithoutCheckpoint) {
  ScenarioSpec spec = small_clean_spec();
  spec.num_pes = 4;
  spec.failures.push_back({.pe = 1, .at_frac = 0.5});
  spec.checkpoint_every = 0;
  EXPECT_NE(validate_scenario(spec), "");
  spec.checkpoint_every = 1;
  EXPECT_EQ(validate_scenario(spec), "");
}

TEST(ScenarioValidateTest, RejectsProcessWorkersOutOfRange) {
  ScenarioSpec spec = small_clean_spec();
  spec.process_workers = 9;
  EXPECT_NE(validate_scenario(spec), "");
  spec.process_workers = -1;
  EXPECT_NE(validate_scenario(spec), "");
  spec.process_workers = 8;
  EXPECT_EQ(validate_scenario(spec), "");
}

TEST(ScenarioValidateTest, RejectsPmeFieldsOutOfRange) {
  ScenarioSpec spec = small_clean_spec();
  spec.full_elec = true;
  spec.pme_slabs = 0;
  EXPECT_NE(validate_scenario(spec), "");
  spec.pme_slabs = 9;
  EXPECT_NE(validate_scenario(spec), "");
  spec.pme_slabs = 3;
  spec.pme_dedicated = spec.num_pes + 1;
  EXPECT_NE(validate_scenario(spec), "");
  spec.pme_dedicated = -1;
  EXPECT_NE(validate_scenario(spec), "");
  spec.pme_dedicated = 1;
  EXPECT_EQ(validate_scenario(spec), "");
}

TEST(ScenarioGenerateTest, SometimesArmsTheProcessLeg) {
  int armed = 0;
  for (int i = 0; i < 100; ++i) {
    armed += generate_scenario(3, i).process_workers > 0 ? 1 : 0;
  }
  // ~25% of the campaign; a wide band keeps the test seed-robust.
  EXPECT_GT(armed, 5);
  EXPECT_LT(armed, 60);
}

// --- generated test systems -------------------------------------------------

TEST(TestSystemTest, AllKindsProduceRunnableSystems) {
  for (const TestSystemKind kind :
       {TestSystemKind::kWaterBox, TestSystemKind::kSolvatedChain,
        TestSystemKind::kMembranePatch}) {
    TestSystemOptions opt;
    opt.kind = kind;
    opt.seed = 5;
    const Molecule mol = make_test_system(opt);
    EXPECT_GT(mol.atom_count(), 0) << test_system_kind_name(kind);
  }
}

TEST(TestSystemTest, IsDeterministicInSeed) {
  TestSystemOptions opt;
  opt.kind = TestSystemKind::kSolvatedChain;
  opt.seed = 9;
  const Molecule a = make_test_system(opt);
  const Molecule b = make_test_system(opt);
  ASSERT_EQ(a.atom_count(), b.atom_count());
  for (int i = 0; i < a.atom_count(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(a.positions()[idx].x, b.positions()[idx].x);
    EXPECT_EQ(a.velocities()[idx].x, b.velocities()[idx].x);
  }
}

// --- differential evaluation ------------------------------------------------

TEST(FuzzEvaluateTest, CleanSpecPassesOnTrunk) {
  const FuzzVerdict v = evaluate_scenario(small_clean_spec());
  EXPECT_TRUE(v.ok) << v.oracle << "\n" << v.detail;
}

TEST(FuzzEvaluateTest, ServeAxisPassesOnTrunk) {
  // Exercises the serve leg: replicas run solo and via the batch scheduler
  // (with forced preemption) and must come out bitwise identical.
  ScenarioSpec spec = small_clean_spec();
  spec.serve_jobs = 3;
  spec.serve_workers = 2;
  spec.serve_preempt_every = 1;
  const FuzzVerdict v = evaluate_scenario(spec);
  EXPECT_TRUE(v.ok) << v.oracle << "\n" << v.detail;
}

TEST(ScenarioGenerateTest, SometimesArmsTheFullElecLeg) {
  int armed = 0;
  for (int i = 0; i < 100; ++i) {
    const ScenarioSpec s = generate_scenario(3, i);
    if (s.full_elec) {
      ++armed;
      EXPECT_GE(s.pme_slabs, 1);
      EXPECT_LE(s.pme_slabs, 4);
      EXPECT_LE(s.pme_dedicated, 1);
    }
  }
  // ~30% of the campaign; a wide band keeps the test seed-robust.
  EXPECT_GT(armed, 8);
  EXPECT_LT(armed, 65);
}

TEST(FuzzEvaluateTest, PmeAxisPassesOnTrunk) {
  // Exercises the full-electrostatics leg: the clean run carries the slab
  // pipeline, the threaded leg crosses it on real threads, and the alternate
  // slab placement must reproduce the reference bitwise.
  ScenarioSpec spec = small_clean_spec();
  spec.num_pes = 4;
  spec.full_elec = true;
  spec.pme_slabs = 3;
  spec.pme_dedicated = 1;
  const FuzzVerdict v = evaluate_scenario(spec);
  EXPECT_TRUE(v.ok) << v.oracle << "\n" << v.detail;
}

TEST(FuzzEvaluateTest, InjectedDefectIsCaughtAndShrunk) {
  // The hidden arrival-order defect must divert the DES trajectory from the
  // threaded one; the shrinker must keep the failure on the same oracle.
  ScenarioSpec spec = small_clean_spec();
  spec.num_pes = 4;
  spec.cycles = 3;
  spec.inject_defect = true;
  const FuzzVerdict v = evaluate_scenario(spec);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.oracle, "backend-divergence") << v.detail;

  const ShrinkResult shrunk = shrink_scenario(spec, v, /*max_evals=*/40);
  EXPECT_FALSE(shrunk.verdict.ok);
  EXPECT_EQ(shrunk.verdict.oracle, v.oracle);
  EXPECT_LE(shrunk.spec.cycles * shrunk.spec.steps, spec.cycles * spec.steps);
  EXPECT_EQ(validate_scenario(shrunk.spec), "");
}

// --- repro files ------------------------------------------------------------

TEST(FuzzReproTest, CampaignWritesReplayableRepros) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "scalemd-fuzz-test-repros";
  std::filesystem::remove_all(dir);

  FuzzOptions opts;
  opts.cases = 2;
  opts.seed = 1;
  opts.inject_defect = true;  // guarantees failures to write
  opts.shrink_evals = 30;
  opts.out_dir = dir.string();
  const FuzzReport report = run_fuzz(opts);
  ASSERT_FALSE(report.failures.empty());

  for (const FuzzFailure& failure : report.failures) {
    ASSERT_FALSE(failure.repro_path.empty()) << "case " << failure.case_index;
    std::ifstream f(failure.repro_path);
    ASSERT_TRUE(f.good()) << failure.repro_path;
    std::ostringstream content;
    content << f.rdbuf();
    std::string message;
    EXPECT_TRUE(replay_repro(content.str(), failure.repro_path, message))
        << message;
  }
  std::filesystem::remove_all(dir);
}

TEST(FuzzReproTest, ReplayRejectsOracleMismatch) {
  // A repro whose scenario passes on this build must *fail* to replay.
  FuzzFailure fake;
  fake.case_index = 0;
  fake.original = small_clean_spec();
  fake.shrunk = small_clean_spec();
  fake.oracle = "backend-divergence";
  std::string message;
  EXPECT_FALSE(replay_repro(render_repro(fake), "<mem>", message));
  EXPECT_NE(message.find("did not fire"), std::string::npos) << message;
}

TEST(FuzzSelfTest, CatchesInjectedDefect) {
  std::string message;
  EXPECT_EQ(run_self_test(/*seed=*/1, /*max_cases=*/2, message), 0) << message;
}

// ---------------------------------------------------------------------------
// Mutation fuzzing of the scenario parser, seeded with a PME-armed spec so
// the full-elec / pme-slabs / pme-dedicated directives sit in the blast
// radius. Contract: parse_scenario either fills a spec that passes
// validate_scenario, or fails with a located error — the file tag, a 1-based
// line and a non-empty reason. Never a crash, never an invalid spec.
// ---------------------------------------------------------------------------

std::string mutate_scenario_text(const std::string& good, Rng& rng) {
  std::string text = good;
  const int op = static_cast<int>(rng.uniform(0.0, 5.0));
  const auto pick_pos = [&](std::size_t size) {
    return static_cast<std::size_t>(rng.uniform(0.0, static_cast<double>(size)));
  };
  switch (op) {
    case 0:  // truncate
      text.resize(pick_pos(text.size()));
      break;
    case 1: {  // corrupt one byte
      if (!text.empty()) {
        text[pick_pos(text.size())] =
            static_cast<char>(rng.uniform(1.0, 127.0));
      }
      break;
    }
    case 2: {  // swap a whitespace-delimited token for a hostile one
      static const char* kHostile[] = {"nan",     "inf", "-1", "1e999",
                                       "garbage", "17",  "0",  ""};
      const std::size_t start = pick_pos(text.size());
      const std::size_t tok_begin = text.find_first_not_of(" \n", start);
      if (tok_begin == std::string::npos) break;
      std::size_t tok_end = text.find_first_of(" \n", tok_begin);
      if (tok_end == std::string::npos) tok_end = text.size();
      text.replace(tok_begin, tok_end - tok_begin,
                   kHostile[static_cast<std::size_t>(rng.uniform(0.0, 8.0))]);
      break;
    }
    case 3: {  // delete one full line
      const std::size_t start = pick_pos(text.size());
      const std::size_t line_begin = text.rfind('\n', start);
      const std::size_t begin =
          line_begin == std::string::npos ? 0 : line_begin + 1;
      std::size_t end = text.find('\n', begin);
      end = end == std::string::npos ? text.size() : end + 1;
      text.erase(begin, end - begin);
      break;
    }
    default: {  // duplicate one full line
      const std::size_t start = pick_pos(text.size());
      const std::size_t line_begin = text.rfind('\n', start);
      const std::size_t begin =
          line_begin == std::string::npos ? 0 : line_begin + 1;
      std::size_t end = text.find('\n', begin);
      end = end == std::string::npos ? text.size() : end + 1;
      text.insert(begin, text.substr(begin, end - begin));
      break;
    }
  }
  return text;
}

TEST(ScenarioParseFuzzTest, MutatedPmeDirectivesNeverEscapeTheContract) {
  ScenarioSpec seed_spec = small_clean_spec();
  seed_spec.num_pes = 4;
  seed_spec.full_elec = true;
  seed_spec.pme_slabs = 3;
  seed_spec.pme_dedicated = 1;
  const std::string good = serialize_scenario(seed_spec);

  Rng rng(20260807);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = good;
    const int rounds = 1 + static_cast<int>(rng.uniform(0.0, 3.0));
    for (int r = 0; r < rounds; ++r) text = mutate_scenario_text(text, rng);

    ScenarioSpec out;
    FaultPlanParseError error;
    if (parse_scenario(text, "fuzz", out, error)) {
      EXPECT_EQ(validate_scenario(out), "")
          << "iter " << iter << ": parser accepted an invalid spec:\n" << text;
      ++parsed;
    } else {
      EXPECT_EQ(error.file, "fuzz") << "iter " << iter;
      EXPECT_GE(error.line, 1) << "iter " << iter;
      EXPECT_FALSE(error.reason.empty()) << "iter " << iter;
      const std::string location = "fuzz:" + std::to_string(error.line) + ":";
      EXPECT_EQ(error.render().rfind(location, 0), 0u)
          << "iter " << iter << ": '" << error.render()
          << "' does not start with its location";
      ++rejected;
    }
  }
  // The operators must exercise both outcomes: some corruptions (duplicated
  // or deleted optional lines) legitimately still parse, many must not.
  EXPECT_GT(rejected, 100) << "fuzzer produced too few malformed inputs";
  EXPECT_GT(parsed, 10) << "fuzzer produced no parseable variants";
}

}  // namespace
}  // namespace scalemd
