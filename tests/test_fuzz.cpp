// Unit tests of the scenario-fuzzing subsystem: spec generation and
// round-trip, validation rules, the differential evaluator on known-good and
// known-bad specs, the shrinker, and the repro read/write cycle (see
// EXPERIMENTS.md "Scenario fuzzing").

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/differential.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"
#include "gen/test_systems.hpp"

namespace scalemd {
namespace {

ScenarioSpec small_clean_spec() {
  ScenarioSpec spec;
  spec.seed = 42;
  spec.kind = TestSystemKind::kWaterBox;
  spec.box = 12.0;
  spec.num_pes = 2;
  spec.threads = 2;
  spec.cycles = 2;
  spec.steps = 1;
  return spec;
}

// --- generation -------------------------------------------------------------

TEST(ScenarioGenerateTest, IsDeterministicInSeedAndIndex) {
  for (int i = 0; i < 20; ++i) {
    const ScenarioSpec a = generate_scenario(7, i);
    const ScenarioSpec b = generate_scenario(7, i);
    EXPECT_EQ(serialize_scenario(a), serialize_scenario(b)) << "index " << i;
  }
  EXPECT_NE(serialize_scenario(generate_scenario(7, 0)),
            serialize_scenario(generate_scenario(7, 1)));
  EXPECT_NE(serialize_scenario(generate_scenario(7, 0)),
            serialize_scenario(generate_scenario(8, 0)));
}

TEST(ScenarioGenerateTest, EveryGeneratedSpecValidates) {
  for (int i = 0; i < 100; ++i) {
    const ScenarioSpec spec = generate_scenario(3, i);
    EXPECT_EQ(validate_scenario(spec), "") << "index " << i << ":\n"
                                           << serialize_scenario(spec);
  }
}

// --- serialize / parse round-trip -------------------------------------------

TEST(ScenarioRoundTripTest, GeneratedSpecsSurviveExactly) {
  for (int i = 0; i < 50; ++i) {
    const ScenarioSpec spec = generate_scenario(11, i);
    const std::string text = serialize_scenario(spec);
    ScenarioSpec back;
    FaultPlanParseError error;
    ASSERT_TRUE(parse_scenario(text, "<mem>", back, error))
        << "index " << i << ": " << error.render();
    EXPECT_EQ(serialize_scenario(back), text) << "index " << i;
  }
}

TEST(ScenarioRoundTripTest, ProcessWorkersRoundTrips) {
  ScenarioSpec spec = small_clean_spec();
  spec.process_workers = 3;
  const std::string text = serialize_scenario(spec);
  EXPECT_NE(text.find("process-workers 3"), std::string::npos);
  ScenarioSpec back;
  FaultPlanParseError error;
  ASSERT_TRUE(parse_scenario(text, "<mem>", back, error)) << error.render();
  EXPECT_EQ(back.process_workers, 3);

  // Default (0) stays out of the text entirely: old repro files and new
  // parsers agree on the schema.
  spec.process_workers = 0;
  EXPECT_EQ(serialize_scenario(spec).find("process-workers"),
            std::string::npos);
}

TEST(ScenarioRoundTripTest, DefectFlagRoundTrips) {
  ScenarioSpec spec = small_clean_spec();
  spec.inject_defect = true;
  const std::string text = serialize_scenario(spec);
  EXPECT_NE(text.find("defect arrival-order"), std::string::npos);
  ScenarioSpec back;
  FaultPlanParseError error;
  ASSERT_TRUE(parse_scenario(text, "<mem>", back, error)) << error.render();
  EXPECT_TRUE(back.inject_defect);
}

TEST(ScenarioParseTest, RejectsUnknownKeysWithLocation) {
  ScenarioSpec spec;
  FaultPlanParseError error;
  const std::string text = serialize_scenario(small_clean_spec()) + "bogus 1\n";
  EXPECT_FALSE(parse_scenario(text, "bad.txt", spec, error));
  EXPECT_EQ(error.file, "bad.txt");
  EXPECT_GT(error.line, 0);
}

TEST(ScenarioParseTest, LeavesSpecUntouchedOnFailure) {
  ScenarioSpec spec = small_clean_spec();
  const std::string before = serialize_scenario(spec);
  FaultPlanParseError error;
  EXPECT_FALSE(parse_scenario("pes not-a-number\n", "<mem>", spec, error));
  EXPECT_EQ(serialize_scenario(spec), before);
}

// --- validation -------------------------------------------------------------

TEST(ScenarioValidateTest, RejectsTiledThreadsKernel) {
  ScenarioSpec spec = small_clean_spec();
  spec.kernel = NonbondedKernel::kTiledThreads;
  EXPECT_NE(validate_scenario(spec), "");
}

TEST(ScenarioValidateTest, RejectsFailuresWithoutCheckpoint) {
  ScenarioSpec spec = small_clean_spec();
  spec.num_pes = 4;
  spec.failures.push_back({.pe = 1, .at_frac = 0.5});
  spec.checkpoint_every = 0;
  EXPECT_NE(validate_scenario(spec), "");
  spec.checkpoint_every = 1;
  EXPECT_EQ(validate_scenario(spec), "");
}

TEST(ScenarioValidateTest, RejectsProcessWorkersOutOfRange) {
  ScenarioSpec spec = small_clean_spec();
  spec.process_workers = 9;
  EXPECT_NE(validate_scenario(spec), "");
  spec.process_workers = -1;
  EXPECT_NE(validate_scenario(spec), "");
  spec.process_workers = 8;
  EXPECT_EQ(validate_scenario(spec), "");
}

TEST(ScenarioGenerateTest, SometimesArmsTheProcessLeg) {
  int armed = 0;
  for (int i = 0; i < 100; ++i) {
    armed += generate_scenario(3, i).process_workers > 0 ? 1 : 0;
  }
  // ~25% of the campaign; a wide band keeps the test seed-robust.
  EXPECT_GT(armed, 5);
  EXPECT_LT(armed, 60);
}

// --- generated test systems -------------------------------------------------

TEST(TestSystemTest, AllKindsProduceRunnableSystems) {
  for (const TestSystemKind kind :
       {TestSystemKind::kWaterBox, TestSystemKind::kSolvatedChain,
        TestSystemKind::kMembranePatch}) {
    TestSystemOptions opt;
    opt.kind = kind;
    opt.seed = 5;
    const Molecule mol = make_test_system(opt);
    EXPECT_GT(mol.atom_count(), 0) << test_system_kind_name(kind);
  }
}

TEST(TestSystemTest, IsDeterministicInSeed) {
  TestSystemOptions opt;
  opt.kind = TestSystemKind::kSolvatedChain;
  opt.seed = 9;
  const Molecule a = make_test_system(opt);
  const Molecule b = make_test_system(opt);
  ASSERT_EQ(a.atom_count(), b.atom_count());
  for (int i = 0; i < a.atom_count(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(a.positions()[idx].x, b.positions()[idx].x);
    EXPECT_EQ(a.velocities()[idx].x, b.velocities()[idx].x);
  }
}

// --- differential evaluation ------------------------------------------------

TEST(FuzzEvaluateTest, CleanSpecPassesOnTrunk) {
  const FuzzVerdict v = evaluate_scenario(small_clean_spec());
  EXPECT_TRUE(v.ok) << v.oracle << "\n" << v.detail;
}

TEST(FuzzEvaluateTest, ServeAxisPassesOnTrunk) {
  // Exercises the serve leg: replicas run solo and via the batch scheduler
  // (with forced preemption) and must come out bitwise identical.
  ScenarioSpec spec = small_clean_spec();
  spec.serve_jobs = 3;
  spec.serve_workers = 2;
  spec.serve_preempt_every = 1;
  const FuzzVerdict v = evaluate_scenario(spec);
  EXPECT_TRUE(v.ok) << v.oracle << "\n" << v.detail;
}

TEST(FuzzEvaluateTest, InjectedDefectIsCaughtAndShrunk) {
  // The hidden arrival-order defect must divert the DES trajectory from the
  // threaded one; the shrinker must keep the failure on the same oracle.
  ScenarioSpec spec = small_clean_spec();
  spec.num_pes = 4;
  spec.cycles = 3;
  spec.inject_defect = true;
  const FuzzVerdict v = evaluate_scenario(spec);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.oracle, "backend-divergence") << v.detail;

  const ShrinkResult shrunk = shrink_scenario(spec, v, /*max_evals=*/40);
  EXPECT_FALSE(shrunk.verdict.ok);
  EXPECT_EQ(shrunk.verdict.oracle, v.oracle);
  EXPECT_LE(shrunk.spec.cycles * shrunk.spec.steps, spec.cycles * spec.steps);
  EXPECT_EQ(validate_scenario(shrunk.spec), "");
}

// --- repro files ------------------------------------------------------------

TEST(FuzzReproTest, CampaignWritesReplayableRepros) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "scalemd-fuzz-test-repros";
  std::filesystem::remove_all(dir);

  FuzzOptions opts;
  opts.cases = 2;
  opts.seed = 1;
  opts.inject_defect = true;  // guarantees failures to write
  opts.shrink_evals = 30;
  opts.out_dir = dir.string();
  const FuzzReport report = run_fuzz(opts);
  ASSERT_FALSE(report.failures.empty());

  for (const FuzzFailure& failure : report.failures) {
    ASSERT_FALSE(failure.repro_path.empty()) << "case " << failure.case_index;
    std::ifstream f(failure.repro_path);
    ASSERT_TRUE(f.good()) << failure.repro_path;
    std::ostringstream content;
    content << f.rdbuf();
    std::string message;
    EXPECT_TRUE(replay_repro(content.str(), failure.repro_path, message))
        << message;
  }
  std::filesystem::remove_all(dir);
}

TEST(FuzzReproTest, ReplayRejectsOracleMismatch) {
  // A repro whose scenario passes on this build must *fail* to replay.
  FuzzFailure fake;
  fake.case_index = 0;
  fake.original = small_clean_spec();
  fake.shrunk = small_clean_spec();
  fake.oracle = "backend-divergence";
  std::string message;
  EXPECT_FALSE(replay_repro(render_repro(fake), "<mem>", message));
  EXPECT_NE(message.find("did not fire"), std::string::npos) << message;
}

TEST(FuzzSelfTest, CatchesInjectedDefect) {
  std::string message;
  EXPECT_EQ(run_self_test(/*seed=*/1, /*max_cases=*/2, message), 0) << message;
}

}  // namespace
}  // namespace scalemd
