#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/compute_plan.hpp"
#include "core/decomposition.hpp"
#include "core/parallel_sim.hpp"
#include "core/work_cache.hpp"
#include "trace/summary.hpp"
#include "gen/presets.hpp"
#include "gen/water_box.hpp"
#include "seq/engine.hpp"
#include "seq/minimize.hpp"

namespace scalemd {
namespace {

/// Small solvated system shared by the suite (built once: generation and
/// the work-cache kernel pass dominate test time).
class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mol_ = new Molecule(small_solvated_chain(1500, 31));
    mol_->suggested_patch_size = 8.0;  // 3x3x3 patches for a ~24.7 A box
    nb_.cutoff = 7.5;
    nb_.switch_dist = 6.5;
    // Relax generation clashes so trajectories stay tame, then thermalize.
    EngineOptions eopts;
    eopts.nonbonded = nb_;
    SequentialEngine relax(*mol_, eopts);
    minimize(relax, 150);
    std::copy(relax.positions().begin(), relax.positions().end(),
              mol_->positions().begin());
    mol_->assign_velocities(300.0, 77);
    workload_ = new Workload(*mol_, MachineModel::asci_red(), nb_);
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete mol_;
    workload_ = nullptr;
    mol_ = nullptr;
  }

  static Molecule* mol_;
  static NonbondedOptions nb_;
  static Workload* workload_;
};

Molecule* CoreFixture::mol_ = nullptr;
NonbondedOptions CoreFixture::nb_;
Workload* CoreFixture::workload_ = nullptr;

TEST_F(CoreFixture, DecompositionAssignsEveryAtomOnce) {
  const Decomposition& d = workload_->decomp;
  std::vector<int> seen(static_cast<std::size_t>(mol_->atom_count()), 0);
  for (const auto& atoms : d.patch_atoms()) {
    for (int a : atoms) ++seen[static_cast<std::size_t>(a)];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
  EXPECT_GT(d.patch_count(), 8);
}

TEST_F(CoreFixture, PlanCoversEveryPatchPairOnce) {
  // Self computes must partition each patch's outer loop; pair computes must
  // cover each neighbor pair exactly once (possibly split into stripes).
  const auto& computes = workload_->plan.computes();
  std::vector<double> self_cover(static_cast<std::size_t>(
                                     workload_->decomp.patch_count()),
                                 0.0);
  std::map<std::pair<int, int>, double> pair_cover;
  for (const ComputeDesc& c : computes) {
    if (c.kind == ComputeKind::kSelf) {
      self_cover[static_cast<std::size_t>(c.patches[0])] += c.frac_end - c.frac_begin;
    } else if (c.kind == ComputeKind::kPair) {
      pair_cover[{c.patches[0], c.patches[1]}] += c.frac_end - c.frac_begin;
    }
  }
  for (std::size_t p = 0; p < self_cover.size(); ++p) {
    if (!workload_->decomp.patch_atoms()[p].empty()) {
      EXPECT_NEAR(self_cover[p], 1.0, 1e-9) << "patch " << p;
    }
  }
  for (const auto& [key, cover] : pair_cover) {
    EXPECT_NEAR(cover, 1.0, 1e-9);
  }
}

TEST_F(CoreFixture, BondedTermsCoveredExactlyOnce) {
  std::vector<int> bond_seen(mol_->bonds().size(), 0);
  std::vector<int> dihedral_seen(mol_->dihedrals().size(), 0);
  for (const ComputeDesc& c : workload_->plan.computes()) {
    if (c.kind == ComputeKind::kBonds) {
      for (int t : c.terms) ++bond_seen[static_cast<std::size_t>(t)];
    }
    if (c.kind == ComputeKind::kDihedrals) {
      for (int t : c.terms) ++dihedral_seen[static_cast<std::size_t>(t)];
    }
  }
  for (int s : bond_seen) EXPECT_EQ(s, 1);
  for (int s : dihedral_seen) EXPECT_EQ(s, 1);
}

TEST_F(CoreFixture, WorkCacheEnergyMatchesSequentialEngine) {
  EngineOptions opts;
  opts.nonbonded = nb_;
  SequentialEngine eng(*mol_, opts);
  EXPECT_NEAR(workload_->work.energy().total(), eng.potential().total(),
              1e-6 * std::fabs(eng.potential().total()));
  // Pair counts must match too: same pairs evaluated, differently grouped.
  EXPECT_EQ(workload_->work.total().pairs_computed, eng.work().pairs_computed);
}

TEST_F(CoreFixture, InitialPlacementBoundsProxiesBySeven) {
  ParallelOptions opts;
  opts.num_pes = 64;
  const ParallelSim sim(*workload_, opts);
  EXPECT_LE(sim.max_proxies_per_patch(), 7);
}

TEST_F(CoreFixture, ParallelForcesMatchSequentialAfterOneStep) {
  ParallelOptions opts;
  opts.num_pes = 7;
  opts.numeric = true;
  opts.dt_fs = 0.5;
  ParallelSim sim(*workload_, opts);
  sim.run_cycle(1);

  EngineOptions eopts;
  eopts.nonbonded = nb_;
  eopts.dt_fs = 0.5;
  SequentialEngine eng(*mol_, eopts);
  eng.step();

  const auto pos = sim.gather_positions();
  const auto vel = sim.gather_velocities();
  const auto frc = sim.gather_forces();
  double max_dp = 0.0, max_dv = 0.0, max_df = 0.0;
  for (int a = 0; a < mol_->atom_count(); ++a) {
    const auto i = static_cast<std::size_t>(a);
    max_dp = std::max(max_dp, norm(pos[i] - eng.positions()[i]));
    max_dv = std::max(max_dv, norm(vel[i] - eng.velocities()[i]));
    max_df = std::max(max_df, norm(frc[i] - eng.forces()[i]));
  }
  EXPECT_LT(max_dp, 1e-9);
  EXPECT_LT(max_dv, 1e-9);
  EXPECT_LT(max_df, 1e-6);
}

TEST_F(CoreFixture, ParallelTrajectoryMatchesSequentialAcrossCyclesWithMigration) {
  ParallelOptions opts;
  opts.num_pes = 5;
  opts.numeric = true;
  opts.dt_fs = 0.5;
  opts.lb.kind = LbStrategyKind::kNone;
  ParallelSim sim(*workload_, opts);
  // Three cycles of 4 steps; atoms migrate between patches at boundaries.
  sim.run_cycle(4);
  sim.run_cycle(4);
  sim.run_cycle(4);

  EngineOptions eopts;
  eopts.nonbonded = nb_;
  eopts.dt_fs = 0.5;
  SequentialEngine eng(*mol_, eopts);
  eng.run(12);

  const auto pos = sim.gather_positions();
  double max_dp = 0.0;
  for (int a = 0; a < mol_->atom_count(); ++a) {
    const auto i = static_cast<std::size_t>(a);
    max_dp = std::max(max_dp, norm(pos[i] - eng.positions()[i]));
  }
  // Trajectories agree to floating-point accumulation tolerance. (The
  // sequential engine re-sorts atoms into cells each step while patches keep
  // insertion order, so summation order differs.)
  EXPECT_LT(max_dp, 1e-6);
}

TEST_F(CoreFixture, PotentialAtStepZeroMatchesWorkCache) {
  ParallelOptions opts;
  opts.num_pes = 4;
  opts.numeric = true;
  ParallelSim sim(*workload_, opts);
  sim.run_cycle(1);
  EXPECT_NEAR(sim.potential_at_step(0), workload_->work.energy().total(),
              1e-6 * std::fabs(workload_->work.energy().total()));
}

TEST_F(CoreFixture, ReductionCountsPatchesFrozenMode) {
  ParallelOptions opts;
  opts.num_pes = 6;
  ParallelSim sim(*workload_, opts);
  sim.run_cycle(2);
  const auto& totals = sim.reduction_results();
  ASSERT_GE(totals.size(), 3u);  // rounds 0, 1, 2 (incl. finalize)
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(totals[r], workload_->decomp.patch_count());
  }
}

TEST_F(CoreFixture, FrozenStepTimesAreDeterministic) {
  auto run = [&] {
    ParallelOptions opts;
    opts.num_pes = 12;
    ParallelSim sim(*workload_, opts);
    return sim.run_benchmark(2, 3);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST_F(CoreFixture, MoreProcessorsRunFaster) {
  auto time_at = [&](int pes) {
    ParallelOptions opts;
    opts.num_pes = pes;
    ParallelSim sim(*workload_, opts);
    return sim.run_benchmark(2, 3);
  };
  const double t1 = time_at(1);
  const double t4 = time_at(4);
  const double t16 = time_at(16);
  EXPECT_LT(t4, t1 / 2.5);
  EXPECT_LT(t16, t4 / 1.5);
}

TEST_F(CoreFixture, DiffusionStrategyAlsoImproves) {
  auto timed = [&](LbStrategyKind kind) {
    ParallelOptions opts;
    opts.num_pes = 24;
    opts.lb.kind = kind;
    ParallelSim sim(*workload_, opts);
    return sim.run_benchmark(2, 3);
  };
  // The distributed strategy must beat no balancing; the centralized greedy
  // may still edge it out (the paper's trade-off).
  EXPECT_LT(timed(LbStrategyKind::kDiffusion), timed(LbStrategyKind::kNone));
}

TEST_F(CoreFixture, LoadBalancingImprovesStepTime) {
  auto timed = [&](LbStrategyKind kind) {
    ParallelOptions opts;
    opts.num_pes = 24;
    opts.lb.kind = kind;
    ParallelSim sim(*workload_, opts);
    return sim.run_benchmark(2, 3);
  };
  const double none = timed(LbStrategyKind::kNone);
  const double balanced = timed(LbStrategyKind::kGreedyRefine);
  EXPECT_LT(balanced, none);
}

TEST_F(CoreFixture, OptimizedMulticastShrinksIntegrationEntry) {
  // Section 4.2.3's claim: one packing per multicast instead of one per
  // destination shortens the coordinate-sending (integration) entry method.
  auto integration_time = [&](bool optimized) {
    ParallelOptions opts;
    opts.num_pes = 32;
    opts.optimized_multicast = optimized;
    ParallelSim sim(*workload_, opts);
    SummaryProfile prof(sim.sim().entries(), opts.num_pes);
    sim.attach_sink(&prof);
    sim.run_benchmark(2, 3);
    return std::pair(prof.category_total(WorkCategory::kIntegration),
                     prof.total_pack_cost());
  };
  const auto [integ_naive, pack_naive] = integration_time(false);
  const auto [integ_opt, pack_opt] = integration_time(true);
  EXPECT_LT(integ_opt, integ_naive);
  EXPECT_LT(pack_opt, pack_naive);
}

TEST_F(CoreFixture, StepCompletionMonotonic) {
  ParallelOptions opts;
  opts.num_pes = 8;
  ParallelSim sim(*workload_, opts);
  sim.run_cycle(3);
  const auto& completion = sim.step_completion();
  for (std::size_t i = 1; i < completion.size(); ++i) {
    EXPECT_GT(completion[i], completion[i - 1]);
  }
}

TEST_F(CoreFixture, StepTimingAccessorsClampOutOfRangeArguments) {
  ParallelOptions opts;
  opts.num_pes = 4;
  ParallelSim sim(*workload_, opts);

  // No steps run yet: every query answers 0, including absurd arguments.
  EXPECT_EQ(sim.seconds_per_step_tail(0), 0.0);
  EXPECT_EQ(sim.seconds_per_step_tail(1000000), 0.0);
  EXPECT_EQ(sim.step_completion_at(-1), 0.0);
  EXPECT_EQ(sim.step_completion_at(7), 0.0);

  sim.run_cycle(3);
  const int n = static_cast<int>(sim.step_completion().size());
  ASSERT_GE(n, 2);

  // A tail longer than history clamps to the full recorded span rather than
  // indexing past the front.
  const double full = sim.seconds_per_step_tail(n - 1);
  EXPECT_GT(full, 0.0);
  EXPECT_EQ(sim.seconds_per_step_tail(n + 50), full);
  EXPECT_EQ(sim.seconds_per_step_tail(1000000), full);
  // Degenerate spans clamp up to one step instead of dividing by zero.
  EXPECT_EQ(sim.seconds_per_step_tail(0), sim.seconds_per_step_tail(1));
  EXPECT_EQ(sim.seconds_per_step_tail(-3), sim.seconds_per_step_tail(1));

  // Bounds-checked completion lookup agrees with the raw vector in range and
  // answers 0 outside it.
  EXPECT_EQ(sim.step_completion_at(n - 1), sim.step_completion()[n - 1]);
  EXPECT_EQ(sim.step_completion_at(n), 0.0);
  EXPECT_EQ(sim.step_completion_at(-1), 0.0);
}

TEST(ComputePlanTest, SplittingReducesMaxGrainEstimate) {
  Molecule mol = make_water_box({30, 30, 30}, 3);
  mol.suggested_patch_size = 10.0;
  NonbondedOptions nb;
  nb.cutoff = 9.0;
  nb.switch_dist = 7.5;
  const Decomposition d(mol, nb.cutoff);
  const MachineModel m = MachineModel::asci_red();

  ComputePlanOptions split_off;
  split_off.split_self = false;
  split_off.split_face_pairs = false;
  const ComputePlan unsplit(d, mol, m, split_off);

  ComputePlanOptions split_on;
  split_on.target_grain = 1e-3;
  const ComputePlan split(d, mol, m, split_on);

  EXPECT_GT(split.computes().size(), unsplit.computes().size());

  const WorkCache wu(mol, d, unsplit, nb);
  const WorkCache ws(mol, d, split, nb);
  double max_u = 0.0, max_s = 0.0;
  for (std::size_t i = 0; i < unsplit.computes().size(); ++i) {
    max_u = std::max(max_u, work_cost(wu.per_compute(i), m));
  }
  for (std::size_t i = 0; i < split.computes().size(); ++i) {
    max_s = std::max(max_s, work_cost(ws.per_compute(i), m));
  }
  EXPECT_LT(max_s, max_u);
  // Total work is preserved by splitting.
  EXPECT_EQ(wu.total().pairs_computed, ws.total().pairs_computed);
}

}  // namespace
}  // namespace scalemd
