// Randomized stress tests of the ThreadedBackend mailbox machinery:
// priority ordering, per-sender FIFO, and quiescence under contention.
// These run under the unit label and are the primary target of the CI
// thread-sanitizer job (see .github/workflows/ci.yml), which is what turns
// "passed on my machine" into an actual absence-of-data-race check.

#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "des/machine.hpp"
#include "rts/threaded_backend.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

MachineModel stress_machine() {
  MachineModel m;
  m.name = "threaded-stress";
  return m;
}

// Workers only drain inside run(), so everything injected beforehand is in
// the mailbox when draining starts and must come out in strict
// (priority asc, injection FIFO) order — the same order the DES scheduler
// would use.
TEST(ThreadedStressTest, PreloadedMailboxDrainsInPriorityOrder) {
  Rng rng(Rng::derive(2026, "threaded-priority"));
  for (int trial = 0; trial < 5; ++trial) {
    const int num_pes = 4;
    ThreadedBackend backend(num_pes, stress_machine(), /*threads=*/2);
    // Each PE's tasks run serialized on one fixed worker, so its log needs
    // no lock; run() joining the pool publishes the writes.
    std::vector<std::vector<std::pair<int, int>>> logs(num_pes);
    const int per_pe = 200;
    for (int pe = 0; pe < num_pes; ++pe) {
      for (int i = 0; i < per_pe; ++i) {
        TaskMsg m;
        m.priority = static_cast<int>(rng.uniform_index(10));
        const int prio = m.priority;
        m.fn = [&logs, pe, prio, i](ExecContext&) {
          logs[static_cast<std::size_t>(pe)].emplace_back(prio, i);
        };
        backend.inject(pe, std::move(m));
      }
    }
    backend.run();
    ASSERT_TRUE(backend.idle());
    for (int pe = 0; pe < num_pes; ++pe) {
      const auto& log = logs[static_cast<std::size_t>(pe)];
      ASSERT_EQ(log.size(), static_cast<std::size_t>(per_pe)) << "pe " << pe;
      for (std::size_t k = 1; k < log.size(); ++k) {
        ASSERT_LE(log[k - 1].first, log[k].first)
            << "trial " << trial << " pe " << pe << " pos " << k;
        if (log[k - 1].first == log[k].first) {
          // Equal priority: injection order (seq) must be preserved.
          ASSERT_LT(log[k - 1].second, log[k].second)
              << "trial " << trial << " pe " << pe << " pos " << k;
        }
      }
    }
  }
}

// Many producers hammering one consumer PE concurrently: the consumer must
// see each producer's messages in that producer's send order (a task body is
// serial, so its sends get increasing seq numbers).
TEST(ThreadedStressTest, PerSenderFifoUnderContention) {
  const int num_pes = 8;
  const int per_sender = 300;
  ThreadedBackend backend(num_pes, stress_machine(), /*threads=*/4);
  std::vector<std::vector<int>> seen(num_pes);  // PE 0's log per sender
  for (int sender = 1; sender < num_pes; ++sender) {
    TaskMsg boot;
    boot.fn = [&seen, sender, per_sender](ExecContext& ctx) {
      for (int i = 0; i < per_sender; ++i) {
        TaskMsg m;
        m.fn = [&seen, sender, i](ExecContext&) {
          seen[static_cast<std::size_t>(sender)].push_back(i);
        };
        ctx.send(0, m);
      }
    };
    backend.inject(sender, std::move(boot));
  }
  backend.run();
  ASSERT_TRUE(backend.idle());
  for (int sender = 1; sender < num_pes; ++sender) {
    const auto& log = seen[static_cast<std::size_t>(sender)];
    ASSERT_EQ(log.size(), static_cast<std::size_t>(per_sender))
        << "sender " << sender;
    for (std::size_t k = 0; k < log.size(); ++k) {
      ASSERT_EQ(log[k], static_cast<int>(k)) << "sender " << sender;
    }
  }
}

// Random fan-out cascade: every task sends to random PEs while it still has
// depth budget. run() must reach quiescence with every offered message
// executed and the accounting conserved — no lost wakeups, no stuck boxes.
TEST(ThreadedStressTest, QuiescenceUnderRandomFanout) {
  Rng rng(Rng::derive(2026, "threaded-fanout"));
  for (int trial = 0; trial < 3; ++trial) {
    const int num_pes = 6;
    ThreadedBackend backend(num_pes, stress_machine(), /*threads=*/3);
    std::atomic<std::uint64_t> ran{0};
    // The cascade must draw randomness deterministically per message, not
    // from a shared stream raced by workers: derive a seed per (root, path).
    struct Cascade {
      ThreadedBackend* backend;
      std::atomic<std::uint64_t>* ran;
      void spawn(ExecContext& ctx, std::uint64_t seed, int depth) const {
        ran->fetch_add(1, std::memory_order_relaxed);
        if (depth <= 0) return;
        Rng local(seed);
        const int fanout = 1 + static_cast<int>(local.uniform_index(3));
        for (int k = 0; k < fanout; ++k) {
          const int dest =
              static_cast<int>(local.uniform_index(
                  static_cast<std::uint64_t>(backend->num_pes())));
          const std::uint64_t child = Rng::derive(seed, 100 + k);
          TaskMsg m;
          const Cascade self = *this;
          m.fn = [self, child, depth](ExecContext& c) {
            self.spawn(c, child, depth - 1);
          };
          ctx.send(dest, m);
        }
      }
    };
    const Cascade cascade{&backend, &ran};
    for (int pe = 0; pe < num_pes; ++pe) {
      const std::uint64_t root =
          Rng::derive(rng.next_u64(), static_cast<std::uint64_t>(pe));
      TaskMsg boot;
      boot.fn = [cascade, root](ExecContext& ctx) {
        cascade.spawn(ctx, root, /*depth=*/6);
      };
      backend.inject(pe, std::move(boot));
    }
    backend.run();
    ASSERT_TRUE(backend.idle()) << "trial " << trial;
    const MessageAccounting& acct = backend.accounting();
    EXPECT_TRUE(acct.conserved()) << "trial " << trial;
    EXPECT_EQ(acct.pending(), 0u) << "trial " << trial;
    EXPECT_EQ(acct.executed, ran.load()) << "trial " << trial;
    EXPECT_EQ(backend.tasks_executed(), ran.load()) << "trial " << trial;
  }
}

// The backend is reused across cycles by ParallelSim: inject / run /
// quiesce repeatedly on one instance, with ping-pong traffic to keep the
// wakeup channels busy across the run() boundary.
TEST(ThreadedStressTest, RepeatedRunsReachQuiescence) {
  const int num_pes = 4;
  ThreadedBackend backend(num_pes, stress_machine(), /*threads=*/2);
  std::atomic<int> bounces{0};
  for (int round = 0; round < 20; ++round) {
    for (int pe = 0; pe < num_pes; ++pe) {
      TaskMsg m;
      m.fn = [&bounces, num_pes](ExecContext& ctx) {
        bounces.fetch_add(1, std::memory_order_relaxed);
        TaskMsg reply;
        reply.fn = [&bounces](ExecContext&) {
          bounces.fetch_add(1, std::memory_order_relaxed);
        };
        ctx.send((ctx.pe() + 1) % num_pes, reply);
      };
      backend.inject(pe, std::move(m));
    }
    backend.run();
    ASSERT_TRUE(backend.idle()) << "round " << round;
    ASSERT_EQ(bounces.load(), 2 * num_pes * (round + 1)) << "round " << round;
  }
  EXPECT_TRUE(backend.accounting().conserved());
}

}  // namespace
}  // namespace scalemd
