// Parallel-PME differential matrix: the slab-decomposed reciprocal solve in
// the message-driven runtime must be *bitwise* deterministic across PE
// counts, LB strategies, slab placements and execution backends (the slab
// count held fixed — it partitions the sums, so it is part of the numerics
// contract), and must agree with the sequential full-electrostatics engine
// up to summation order. The charged "waterbox_ions" preset (salty water,
// net-neutral with bare +-1 ions) drives every case.
#include <gtest/gtest.h>

#include <string>

#include "check/golden.hpp"

namespace scalemd {
namespace {

Trajectory run_pme(int pes, BackendKind backend, int threads, LbStrategyKind lb,
                   int slabs, int dedicated_ranks = 0) {
  const GoldenSpec* spec = find_golden_spec("waterbox_ions");
  EXPECT_NE(spec, nullptr);
  ParallelGoldenOptions p;
  p.num_pes = pes;
  p.backend = backend;
  p.threads = threads;
  p.lb = lb;
  p.pme_slabs = slabs;
  p.pme_dedicated_ranks = dedicated_ranks;
  return record_parallel_trajectory(*spec, p);
}

void expect_bitwise(const Trajectory& got, const Trajectory& ref,
                    const std::string& what) {
  CompareOptions bitwise;
  bitwise.mode = CompareMode::kUlp;
  bitwise.max_ulps = 0;
  const CompareResult r = compare_trajectories(got, ref, bitwise);
  EXPECT_TRUE(r.match) << what << ": " << r.message;
  EXPECT_EQ(r.worst, 0.0) << what << ": worst ulp deviation at " << r.where;
}

// ---------------------------------------------------------------------------
// The matrix: {2, 4, 8} PEs x {none, greedy, greedy+refine} LB x
// {simulated, threaded} backend, slab count fixed at 4. Every leg must be
// bitwise identical to the 2-PE / no-LB / simulated reference.
// ---------------------------------------------------------------------------

struct PmeDiffCase {
  int pes;
  LbStrategyKind lb;
  BackendKind backend;
};

const char* lb_tag(LbStrategyKind k) {
  switch (k) {
    case LbStrategyKind::kGreedy:
      return "greedy";
    case LbStrategyKind::kGreedyRefine:
      return "refine";
    default:
      return "none";
  }
}

std::string pme_case_name(const testing::TestParamInfo<PmeDiffCase>& info) {
  return "pes" + std::to_string(info.param.pes) + "_" + lb_tag(info.param.lb) +
         (info.param.backend == BackendKind::kSimulated ? "_sim" : "_threads");
}

class PmeParallelDiffTest : public testing::TestWithParam<PmeDiffCase> {};

TEST_P(PmeParallelDiffTest, BitwiseIdenticalToReferenceLeg) {
  const PmeDiffCase& c = GetParam();
  const Trajectory ref =
      run_pme(2, BackendKind::kSimulated, 0, LbStrategyKind::kNone, 4);
  const Trajectory got =
      run_pme(c.pes, c.backend, c.backend == BackendKind::kThreaded ? 4 : 0,
              c.lb, 4);
  expect_bitwise(got, ref, pme_case_name({c, 0}));
}

constexpr PmeDiffCase kPmeMatrix[] = {
    {2, LbStrategyKind::kNone, BackendKind::kSimulated},
    {2, LbStrategyKind::kGreedy, BackendKind::kSimulated},
    {2, LbStrategyKind::kGreedyRefine, BackendKind::kSimulated},
    {4, LbStrategyKind::kNone, BackendKind::kSimulated},
    {4, LbStrategyKind::kGreedy, BackendKind::kSimulated},
    {4, LbStrategyKind::kGreedyRefine, BackendKind::kSimulated},
    {8, LbStrategyKind::kNone, BackendKind::kSimulated},
    {8, LbStrategyKind::kGreedy, BackendKind::kSimulated},
    {8, LbStrategyKind::kGreedyRefine, BackendKind::kSimulated},
    {2, LbStrategyKind::kNone, BackendKind::kThreaded},
    {2, LbStrategyKind::kGreedy, BackendKind::kThreaded},
    {2, LbStrategyKind::kGreedyRefine, BackendKind::kThreaded},
    {4, LbStrategyKind::kNone, BackendKind::kThreaded},
    {4, LbStrategyKind::kGreedy, BackendKind::kThreaded},
    {4, LbStrategyKind::kGreedyRefine, BackendKind::kThreaded},
    {8, LbStrategyKind::kNone, BackendKind::kThreaded},
    {8, LbStrategyKind::kGreedy, BackendKind::kThreaded},
    {8, LbStrategyKind::kGreedyRefine, BackendKind::kThreaded},
};

INSTANTIATE_TEST_SUITE_P(PesLbBackendSweep, PmeParallelDiffTest,
                         testing::ValuesIn(kPmeMatrix), pme_case_name);

// ---------------------------------------------------------------------------
// Against the sequential full-electrostatics engine: the forward half of the
// slab pipeline (spread, FFTs, influence) is bitwise identical to the
// sequential Pme; only partitioned sums (energy partials, gather, exclusion
// corrections) and the runtime's canonical force fold differ from the
// sequential summation order. Deviations must stay at rounding scale.
// ---------------------------------------------------------------------------

TEST(PmeParallelVsSequential, MatchesWithinSummationOrderBounds) {
  const GoldenSpec* spec = find_golden_spec("waterbox_ions");
  ASSERT_NE(spec, nullptr);
  Trajectory seq = record_trajectory(*spec);
  ASSERT_FALSE(seq.frames.empty());
  // The parallel recorder has no step-0 frame (it cannot observe pre-cycle
  // state); compare the common tail.
  seq.frames.erase(seq.frames.begin());

  for (const int pes : {2, 4, 8}) {
    const Trajectory par =
        run_pme(pes, BackendKind::kSimulated, 0, LbStrategyKind::kNone, 4);
    CompareOptions rel;  // kRelative, array-scale, tol 1e-8
    const CompareResult r = compare_trajectories(par, seq, rel);
    EXPECT_TRUE(r.match) << "pes " << pes << ": " << r.message;
    EXPECT_LT(r.worst, 1e-9) << "pes " << pes << ": worst deviation at "
                             << r.where;
  }
}

// ---------------------------------------------------------------------------
// Placement invariance beyond the LB sweep: dedicated PME ranks pin the
// slabs onto the tail PEs and exclude them from load balancing. A pure
// placement policy must not move a single bit.
// ---------------------------------------------------------------------------

TEST(PmeParallelDiffExtra, DedicatedRanksAreBitwiseNeutral) {
  const Trajectory spread =
      run_pme(4, BackendKind::kSimulated, 0, LbStrategyKind::kGreedyRefine, 4);
  const Trajectory pinned =
      run_pme(4, BackendKind::kSimulated, 0, LbStrategyKind::kGreedyRefine, 4,
              /*dedicated_ranks=*/1);
  expect_bitwise(pinned, spread, "dedicated ranks vs spread slabs");
}

// The forked-worker backend routes cross-worker PME traffic (deposits,
// both transpose directions, force returns) through the wire codec; the
// frames must reconstruct the exact bits the in-process backends exchange.
TEST(PmeParallelDiffExtra, ProcessBackendIsBitwiseIdentical) {
  const GoldenSpec* spec = find_golden_spec("waterbox_ions");
  ASSERT_NE(spec, nullptr);
  const Trajectory ref =
      run_pme(4, BackendKind::kSimulated, 0, LbStrategyKind::kGreedy, 4);
  ParallelGoldenOptions p;
  p.num_pes = 4;
  p.backend = BackendKind::kProcess;
  p.process_workers = 2;
  p.lb = LbStrategyKind::kGreedy;
  p.pme_slabs = 4;
  const Trajectory got = record_parallel_trajectory(*spec, p);
  expect_bitwise(got, ref, "process backend, 2 workers");
}

// A slab count that does not divide the grid or the PE count exercises the
// unbalanced plane/row partitions; it must still be PE-invariant.
TEST(PmeParallelDiffExtra, NonDividingSlabCountIsPeInvariant) {
  const Trajectory two =
      run_pme(2, BackendKind::kSimulated, 0, LbStrategyKind::kNone, 3);
  const Trajectory eight =
      run_pme(8, BackendKind::kSimulated, 0, LbStrategyKind::kNone, 3);
  expect_bitwise(eight, two, "slabs=3 across PE counts");
}

// Changing the slab count repartitions the sums: the trajectory is allowed
// to differ only at summation-order scale, and after a few steps it must
// still agree with the fixed-slab reference to the relative tolerance.
TEST(PmeParallelDiffExtra, SlabCountStaysWithinSummationOrderBounds) {
  const Trajectory four =
      run_pme(4, BackendKind::kSimulated, 0, LbStrategyKind::kNone, 4);
  const Trajectory three =
      run_pme(4, BackendKind::kSimulated, 0, LbStrategyKind::kNone, 3);
  const CompareResult r = compare_trajectories(three, four, {});
  EXPECT_TRUE(r.match) << r.message;
}

}  // namespace
}  // namespace scalemd
