#include <gtest/gtest.h>

#include "trace/audit.hpp"
#include "trace/event_log.hpp"
#include "trace/grainsize.hpp"
#include "trace/summary.hpp"
#include "trace/timeline.hpp"

namespace scalemd {
namespace {

MachineModel quiet_machine() {
  MachineModel m;
  m.send_overhead = 0.0;
  m.recv_overhead = 0.0;
  m.latency = 0.5;
  m.byte_time = 0.0;
  m.pack_byte_cost = 0.0;
  m.local_overhead = 0.0;
  return m;
}

TEST(SummaryProfileTest, AccumulatesPerEntry) {
  Simulator sim(2, quiet_machine());
  const EntryId nb = sim.entries().add("nonbonded", WorkCategory::kNonbonded);
  const EntryId integ = sim.entries().add("integrate", WorkCategory::kIntegration);
  SummaryProfile prof(sim.entries(), 2);
  sim.set_sink(&prof);

  sim.inject(0, {.entry = nb, .fn = [](ExecContext& c) { c.charge(1.0); }});
  sim.inject(0, {.entry = nb, .fn = [](ExecContext& c) { c.charge(2.0); }});
  sim.inject(1, {.entry = integ, .fn = [](ExecContext& c) { c.charge(0.5); }});
  sim.run();

  EXPECT_EQ(prof.entry(nb).count, 2u);
  EXPECT_DOUBLE_EQ(prof.entry(nb).total, 3.0);
  EXPECT_DOUBLE_EQ(prof.entry(nb).max_duration, 2.0);
  EXPECT_DOUBLE_EQ(prof.category_total(WorkCategory::kNonbonded), 3.0);
  EXPECT_DOUBLE_EQ(prof.category_total(WorkCategory::kIntegration), 0.5);
  EXPECT_DOUBLE_EQ(prof.pe_busy(0), 3.0);
  EXPECT_DOUBLE_EQ(prof.pe_busy(1), 0.5);

  const std::string text = prof.render();
  EXPECT_NE(text.find("nonbonded"), std::string::npos);

  prof.reset();
  EXPECT_EQ(prof.entry(nb).count, 0u);
  EXPECT_DOUBLE_EQ(prof.pe_busy(0), 0.0);
}

TEST(EventLogTest, RecordsAndFilters) {
  Simulator sim(1, quiet_machine());
  const EntryId a = sim.entries().add("a", WorkCategory::kNonbonded);
  const EntryId b = sim.entries().add("b", WorkCategory::kBonded);
  EventLog log;
  sim.set_sink(&log);
  sim.inject(0, {.entry = a, .fn = [](ExecContext& c) { c.charge(1.0); }});
  sim.inject(0, {.entry = b, .fn = [](ExecContext& c) { c.charge(1.0); }});
  sim.inject(0, {.entry = a, .fn = [](ExecContext& c) { c.charge(1.0); }}, 10.0);
  sim.run();
  EXPECT_EQ(log.tasks().size(), 3u);
  EXPECT_EQ(log.tasks_of(a, 0.0, 5.0).size(), 1u);
  EXPECT_EQ(log.tasks_of(a, 0.0, 20.0).size(), 2u);
  log.clear();
  EXPECT_TRUE(log.tasks().empty());
}

TEST(GrainsizeTest, HistogramPerStepAveraging) {
  Simulator sim(4, quiet_machine());
  const EntryId nb = sim.entries().add("nb", WorkCategory::kNonbonded);
  EventLog log;
  sim.set_sink(&log);
  // Two "steps" of identical work: 8 tasks of 9 ms, 2 tasks of 40 ms.
  for (int step = 0; step < 2; ++step) {
    for (int i = 0; i < 8; ++i) {
      sim.inject(i % 4, {.entry = nb, .fn = [](ExecContext& c) { c.charge(0.009); }},
                 step * 1.0);
    }
    for (int i = 0; i < 2; ++i) {
      sim.inject(i, {.entry = nb, .fn = [](ExecContext& c) { c.charge(0.040); }},
                 step * 1.0 + 0.5);
    }
  }
  sim.run();
  const Histogram h = grainsize_histogram(log, sim.entries(),
                                          WorkCategory::kNonbonded, /*steps=*/2);
  EXPECT_EQ(h.total(), 10u);  // 8 + 2 per average step
  EXPECT_NEAR(h.max_sample(), 41.0, 1.01);
  // The 9 ms bin holds 8 tasks.
  EXPECT_EQ(h.count(4), 8u);  // bin [8,10) with default 2 ms bins
}

TEST(TimelineTest, RendersBusyAndIdle) {
  Simulator sim(2, quiet_machine());
  const EntryId nb = sim.entries().add("nb", WorkCategory::kNonbonded);
  const EntryId in = sim.entries().add("integ", WorkCategory::kIntegration);
  EventLog log;
  sim.set_sink(&log);
  sim.inject(0, {.entry = nb, .fn = [](ExecContext& c) { c.charge(1.0); }});
  sim.inject(1, {.entry = in, .fn = [](ExecContext& c) { c.charge(0.25); }});
  sim.run();
  TimelineOptions opts;
  opts.num_pes = 2;
  opts.width = 40;
  const std::string s = render_timeline(log, sim.entries(), opts);
  EXPECT_NE(s.find('N'), std::string::npos);
  EXPECT_NE(s.find('I'), std::string::npos);
  EXPECT_NE(s.find('.'), std::string::npos);  // pe1 idle most of the window
  EXPECT_NE(s.find("pe0"), std::string::npos);
  EXPECT_NE(s.find("pe1"), std::string::npos);
}

TEST(AuditTest, IdealRowDividesByPes) {
  const AuditRow r = ideal_audit(52.44, 3.16, 1.44, 1024, 1);
  EXPECT_NEAR(r.nonbonded, 52.44 * 1e3 / 1024, 1e-9);
  EXPECT_NEAR(r.total, 57.04 * 1e3 / 1024, 1e-6);
  EXPECT_DOUBLE_EQ(r.overhead, 0.0);
  EXPECT_DOUBLE_EQ(r.idle, 0.0);
}

TEST(AuditTest, ActualRowDecomposes) {
  Simulator sim(2, quiet_machine());
  const EntryId nb = sim.entries().add("nb", WorkCategory::kNonbonded);
  SummaryProfile prof(sim.entries(), 2);
  sim.set_sink(&prof);
  // PE0 busy 2.0, PE1 busy 1.0; span 3.0 (PE0 runs two seq tasks).
  sim.inject(0, {.entry = nb, .fn = [](ExecContext& c) { c.charge(1.0); }});
  sim.inject(0, {.entry = nb, .fn = [](ExecContext& c) { c.charge(1.0); }});
  sim.inject(1, {.entry = nb, .fn = [](ExecContext& c) { c.charge(1.0); }});
  sim.run();
  const AuditRow r = actual_audit(prof, /*window=*/2.0, /*num_pes=*/2, /*steps=*/1);
  EXPECT_DOUBLE_EQ(r.total, 2000.0);
  // avg busy = 1.5 s -> 1500 ms; max busy = 2.0 s.
  EXPECT_DOUBLE_EQ(r.imbalance, 500.0);
  EXPECT_DOUBLE_EQ(r.idle, 0.0);
  EXPECT_NEAR(r.nonbonded, 1500.0, 1e-9);
  const std::string text = render_audit(ideal_audit(3, 0, 0, 2, 1), r);
  EXPECT_NE(text.find("Ideal"), std::string::npos);
  EXPECT_NE(text.find("Actual"), std::string::npos);
}

TEST(AuditTest, ThreeRowVariantShowsModeledAndMeasured) {
  AuditRow modeled;
  modeled.total = 10.0;
  AuditRow measured;
  measured.total = 12.5;
  const std::string text =
      render_audit(ideal_audit(3, 0, 0, 2, 1), modeled, measured);
  EXPECT_NE(text.find("Ideal"), std::string::npos);
  EXPECT_NE(text.find("Modeled"), std::string::npos);
  EXPECT_NE(text.find("Measured"), std::string::npos);
  EXPECT_NE(text.find("12.50"), std::string::npos);
}

TEST(TimelineTest, WallClockModeIsLabeled) {
  Simulator sim(1, quiet_machine());
  const EntryId nb = sim.entries().add("nb", WorkCategory::kNonbonded);
  EventLog log;
  sim.set_sink(&log);
  sim.inject(0, {.entry = nb, .fn = [](ExecContext& c) { c.charge(1.0); }});
  sim.run();
  TimelineOptions opts;
  opts.num_pes = 1;
  opts.width = 20;
  EXPECT_EQ(render_timeline(log, sim.entries(), opts).find("wall clock"),
            std::string::npos);
  opts.wall_clock = true;
  EXPECT_NE(render_timeline(log, sim.entries(), opts).find("wall clock"),
            std::string::npos);
}

TEST(SummaryProfileTest, WallClockModeIsLabeled) {
  Simulator sim(1, quiet_machine());
  const EntryId nb = sim.entries().add("nb", WorkCategory::kNonbonded);
  SummaryProfile prof(sim.entries(), 1);
  sim.set_sink(&prof);
  sim.inject(0, {.entry = nb, .fn = [](ExecContext& c) { c.charge(1.0); }});
  sim.run();
  EXPECT_FALSE(prof.wall_clock());
  EXPECT_EQ(prof.render().find("wall clock"), std::string::npos);
  prof.set_wall_clock(true);
  EXPECT_TRUE(prof.wall_clock());
  EXPECT_NE(prof.render().find("wall clock"), std::string::npos);
}

}  // namespace
}  // namespace scalemd
