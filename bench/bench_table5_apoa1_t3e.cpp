// Reproduces Table 5: ApoA-I scaling on the Cray T3E-900 model (4..256
// processors; speedups relative to 4, as the problem does not fit on fewer
// T3E nodes). `--json [path]` / `--out <path>` emit a scalemd-bench report.

#include "bench_common.hpp"
#include "gen/presets.hpp"

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::t3e900());

  BenchmarkConfig cfg;
  cfg.machine = MachineModel::t3e900();
  cfg.pe_counts = bench::maybe_clip({4, 8, 16, 32, 64, 128, 256});
  cfg.speedup_base = 4.0;

  std::printf("Table 5: %s (%d atoms) on %s\n\n", mol.name.c_str(),
              mol.atom_count(), cfg.machine.name.c_str());
  const auto rows = run_scaling(wl, cfg);
  std::printf("%s\n", bench::render_with_paper(rows, bench::kPaperTable5, true).c_str());

  perf::BenchReport report = perf::make_report("table5");
  perf::append_scaling_records(report, "table5", rows);
  return bench::emit_report(args, report);
}
