// Reproduces Table 2: ApoA-I (92,224 atoms) scaling on the ASCI-Red model,
// 1..2048 processors, with the full optimization set and greedy+refine load
// balancing. `--json [path]` / `--out <path>` additionally emit the rows as
// a scalemd-bench report ("table2/pes=N" records, virtual seconds).

#include "bench_common.hpp"
#include "gen/presets.hpp"

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::asci_red());

  BenchmarkConfig cfg;
  cfg.machine = MachineModel::asci_red();
  cfg.pe_counts = bench::maybe_clip(asci_ladder(1, 2048));

  std::printf("Table 2: %s (%d atoms, %d patches) on %s\n\n", mol.name.c_str(),
              mol.atom_count(), wl.decomp.patch_count(), cfg.machine.name.c_str());
  const auto rows = run_scaling(wl, cfg);
  std::printf("%s\n", bench::render_with_paper(rows, bench::kPaperTable2, true).c_str());

  perf::BenchReport report = perf::make_report("table2");
  perf::append_scaling_records(report, "table2", rows);
  return bench::emit_report(args, report);
}
