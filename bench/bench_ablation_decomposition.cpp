// Reproduces the section 3 scalability claim: atom decomposition (replicated
// data) and force decomposition are not scalable; the hybrid force/spatial
// decomposition is. All three run the same ApoA-I-class workload on the same
// ASCI-Red machine model, with the baselines granted perfectly balanced
// compute (which flatters them). `--json [path]` / `--out <path>` emit the
// per-strategy step times as a scalemd-bench report.

#include <cstdio>

#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "gen/presets.hpp"

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::asci_red());
  const MachineModel machine = MachineModel::asci_red();

  std::printf("Decomposition ablation: %s (%d atoms) on ASCI-Red\n"
              "(s/step; paper section 3: atom/force decomposition are "
              "theoretically non-scalable)\n\n", mol.name.c_str(), mol.atom_count());

  perf::BenchRunner runner;
  Table t({"Processors", "atom decomp", "force decomp", "hybrid (NAMD)",
           "hybrid speedup"});
  double hybrid_base = 0.0;
  for (int pes : {1, 4, 16, 64, 256, 1024, 2048}) {
    const double ad = atom_decomposition_step(wl, pes, machine);
    const double fd = force_decomposition_step(wl, pes, machine);
    ParallelOptions opts;
    opts.num_pes = pes;
    opts.machine = machine;
    ParallelSim sim(wl, opts);
    const double hybrid = sim.run_benchmark(3, 5);
    if (hybrid_base == 0.0) hybrid_base = hybrid;
    t.add_row({std::to_string(pes), fmt_sig(ad, 3), fmt_sig(fd, 3),
               fmt_sig(hybrid, 3), fmt_sig(hybrid_base / hybrid, 3)});
    const std::string suffix = "/pes=" + std::to_string(pes);
    runner.record_value("ablation_decomp/atom" + suffix,
                        "virtual_seconds_per_step", ad).param("pes", pes);
    runner.record_value("ablation_decomp/force" + suffix,
                        "virtual_seconds_per_step", fd).param("pes", pes);
    runner.record_value("ablation_decomp/hybrid" + suffix,
                        "virtual_seconds_per_step", hybrid).param("pes", pes);
  }
  std::printf("%s", t.render().c_str());

  perf::BenchReport report = perf::make_report("ablation_decomp");
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}
