// Reproduces Table 3: BC1 (206,617 atoms) scaling on the ASCI-Red model.
// The paper scales speedup relative to 2 processors because the system is
// too large for one node's memory; we keep the same normalization.
// `--json [path]` / `--out <path>` emit a scalemd-bench report.

#include "bench_common.hpp"
#include "gen/presets.hpp"

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = bc1_like();
  const Workload wl(mol, MachineModel::asci_red());

  BenchmarkConfig cfg;
  cfg.machine = MachineModel::asci_red();
  cfg.pe_counts = bench::maybe_clip(asci_ladder(2, 2048));
  cfg.speedup_base = 2.0;

  std::printf("Table 3: %s (%d atoms, %d patches) on %s\n\n", mol.name.c_str(),
              mol.atom_count(), wl.decomp.patch_count(), cfg.machine.name.c_str());
  const auto rows = run_scaling(wl, cfg);
  std::printf("%s\n", bench::render_with_paper(rows, bench::kPaperTable3, true).c_str());

  perf::BenchReport report = perf::make_report("table3");
  perf::append_scaling_records(report, "table3", rows);
  return bench::emit_report(args, report);
}
