// Reproduces Figures 1 and 2: the grain-size distribution of non-bonded
// compute tasks per average timestep, before and after splitting the large
// face-pair computes (section 4.2.1). The "before" configuration matches the
// paper's: within-patch self computes are already split by atom count, but
// pair computes are monolithic — producing the bimodal distribution whose
// large mode (~40 ms) caps scalability; splitting removes it.
// `--json [path]` / `--out <path>` emit the distribution summaries as a
// scalemd-bench report.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"
#include "trace/grainsize.hpp"

namespace {

struct GrainStats {
  std::size_t computes = 0;
  std::size_t tasks_per_step = 0;
  double largest_ms = 0.0;
  double mean_ms = 0.0;
};

GrainStats run_case(const char* title, const scalemd::Molecule& mol,
                    bool split_pairs) {
  using namespace scalemd;
  ComputePlanOptions plan;
  plan.split_self = true;
  plan.split_face_pairs = split_pairs;
  const Workload wl(mol, MachineModel::asci_red(), {}, plan);

  constexpr int kSteps = 4;
  ParallelOptions opts;
  opts.num_pes = 1024;
  opts.machine = MachineModel::asci_red();
  ParallelSim sim(wl, opts);
  sim.run_cycle(2);
  sim.load_balance(false);
  EventLog log;
  sim.attach_sink(&log);
  sim.run_cycle(kSteps);

  const Histogram h = grainsize_histogram(log, sim.sim().entries(),
                                          WorkCategory::kNonbonded, kSteps + 1);
  std::printf("%s\n", title);
  std::printf("  computes: %zu, tasks/step: %zu, largest grain: %.1f ms, "
              "mean: %.1f ms\n\n",
              wl.plan.computes().size(), h.total(), h.max_sample(), h.mean_sample());
  std::printf("%s\n", h.render(70).c_str());
  return {wl.plan.computes().size(), h.total(), h.max_sample(), h.mean_sample()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = apoa1_like();
  std::printf("Figures 1-2: non-bonded task grain sizes (ms) per average step,\n"
              "%s on 1024 PEs of ASCI-Red\n\n", mol.name.c_str());
  const GrainStats before =
      run_case("Figure 1: before splitting face-pair computes", mol, false);
  const GrainStats after =
      run_case("Figure 2: after splitting face-pair computes", mol, true);

  perf::BenchReport report = perf::make_report("fig12");
  perf::BenchRunner runner;
  const struct {
    const char* name;
    const GrainStats* s;
  } cases[] = {{"fig12/before_split", &before}, {"fig12/after_split", &after}};
  for (const auto& c : cases) {
    runner.record_value(c.name, "largest_grain_ms", c.s->largest_ms)
        .param("mean_grain_ms", c.s->mean_ms)
        .param("tasks_per_step", static_cast<double>(c.s->tasks_per_step))
        .param("computes", static_cast<double>(c.s->computes));
  }
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}
