// Reproduces Table 1: the performance audit of a 1024-processor ApoA-I run
// on ASCI-Red, at the paper's intermediate optimization stage (~86 ms/step:
// grain-size splitting done, multicast still naive). Ideal = single-PE
// category times / 1024 assuming perfect scaling, exactly as the paper
// computes it.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"
#include "trace/audit.hpp"

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;
  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::asci_red());

  constexpr int kPes = 1024;
  constexpr int kSteps = 5;
  ParallelOptions opts;
  opts.num_pes = kPes;
  opts.machine = MachineModel::asci_red();
  opts.optimized_multicast = false;  // the audit predates section 4.2.3
  ParallelSim sim(wl, opts);

  // Reach the balanced steady state, then profile a clean window.
  sim.run_cycle(3);
  sim.load_balance(false);
  sim.run_cycle(3);
  sim.load_balance(true);
  SummaryProfile prof(sim.sim().entries(), kPes);
  sim.attach_sink(&prof);
  const double t0 = sim.sim().time();
  sim.run_cycle(kSteps);
  const double window = sim.sim().time() - t0;

  const AuditRow ideal =
      ideal_audit(sim.ideal_nonbonded_seconds() * (kSteps + 1),
                  sim.ideal_bonded_seconds() * (kSteps + 1),
                  sim.ideal_integration_seconds() * (kSteps + 1), kPes, kSteps + 1);
  const AuditRow actual = actual_audit(prof, window, kPes, kSteps + 1);

  std::printf("Table 1: performance audit, %s on %d PEs of %s\n\n",
              mol.name.c_str(), kPes, opts.machine.name.c_str());
  std::printf("%s\n", render_audit(ideal, actual).c_str());

  Table paper({"", "Total", "Non-bonded", "Bonds", "Integration", "Overhead",
               "Imbalance", "Idle", "Receives"});
  paper.add_row(
      {"Ideal (paper)", "57.04", "52.44", "3.16", "1.44", "0", "0", "0", "0"});
  paper.add_row({"Actual (paper)", "86", "49.77", "3.9", "3.05", "7.97", "10.45",
                 "9.25", "1.61"});
  std::printf("\nPublished Table 1 (milliseconds):\n%s", paper.render().c_str());

  perf::BenchReport report = perf::make_report("table1");
  perf::BenchRunner runner;
  runner.record_value("table1/actual_total", "ms_per_step", actual.total)
      .param("pes", kPes)
      .param("nonbonded_ms", actual.nonbonded)
      .param("overhead_ms", actual.overhead)
      .param("imbalance_ms", actual.imbalance)
      .param("idle_ms", actual.idle);
  runner.record_value("table1/ideal_total", "ms_per_step", ideal.total)
      .param("pes", kPes);
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}
