// EXTENSION (beyond the paper's benchmarks): scalability of cutoff MD with a
// grid-based full-electrostatics (PME) phase added to every step. The paper
// notes the grid-based component "consume[s] a small fraction of the total
// computation time ... but their contribution to scalability must still be
// addressed" and defers its parallelization to ongoing research [14-16].
// This bench quantifies that deferred problem on our machine model.
//
// The PME phase per step: local charge spreading/gathering over N/P atoms,
// two 3D FFTs over a grid distributed as slabs (each needing one all-to-all
// transpose of grid/P data per FFT), and the per-slab reciprocal multiply.
// The all-to-alls are what bite: they scale as messages ~ P per PE.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"

namespace {

using namespace scalemd;

/// Virtual seconds one PE spends in the PME phase, plus the all-to-all
/// communication, appended after the cutoff step completes (conservative:
/// no overlap). Grid 108x108x80-ish -> 96^3 for ApoA-I.
double pme_phase_seconds(const Workload& wl, int pes, const MachineModel& m) {
  const double n_atoms = static_cast<double>(wl.mol->atom_count());
  const double grid = 96.0 * 96.0 * 96.0;
  // Work: ~300 flop-equivalents per atom for order-4 spread+gather, and
  // ~5 log2(G) per grid point per FFT pair, at the machine's per-pair rate
  // normalized to ~75 flops (see driver.cpp).
  const double flop_rate = 75.0 / m.pair_cost;  // flops per virtual second
  const double local = (300.0 * n_atoms / pes +
                        2.0 * 5.0 * grid * std::log2(grid) / pes) / flop_rate;

  // Two all-to-all transposes per step: each PE exchanges grid/P complex
  // points (16 B) with every other PE.
  const double bytes_total = 16.0 * grid / pes;
  const int partners = pes - 1;
  double comm = 0.0;
  if (partners > 0) {
    const double per_msg = bytes_total / partners;
    comm = 2.0 * partners *
           (m.send_overhead + m.recv_overhead + m.latency + per_msg * m.byte_time +
            per_msg * (m.pack_byte_cost + m.unpack_byte_cost));
  }
  return local + comm;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;
  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::asci_red());
  const MachineModel machine = MachineModel::asci_red();

  std::printf("Extension: cutoff-only vs cutoff + per-step PME phase, %s on "
              "ASCI-Red\n(s/step; PME phase modeled as slab-decomposed grid "
              "work + 2 all-to-all transposes)\n\n", mol.name.c_str());

  Table t({"Processors", "cutoff only", "with PME", "PME share", "speedup w/ PME"});
  perf::BenchRunner runner;
  double base = 0.0;
  for (int pes : {1, 16, 64, 256, 1024, 2048}) {
    ParallelOptions opts;
    opts.num_pes = pes;
    opts.machine = machine;
    ParallelSim sim(wl, opts);
    const double cutoff = sim.run_benchmark(3, 5);
    const double pme = pme_phase_seconds(wl, pes, machine);
    const double total = cutoff + pme;
    if (base == 0.0) base = total;
    t.add_row({std::to_string(pes), fmt_sig(cutoff, 3), fmt_sig(total, 3),
               fmt_fixed(100.0 * pme / total, 1) + "%",
               fmt_sig(base / total, 3)});
    runner
        .record_value("fullelec/with_pme/pes=" + std::to_string(pes),
                      "virtual_seconds_per_step", total)
        .param("pes", pes)
        .param("cutoff_seconds", cutoff)
        .param("pme_share", pme / total);
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("The grid phase is <8%% of one-processor work but, carried by\n"
              "all-to-all transposes, grows to dominate at thousands of PEs —\n"
              "the scalability problem the paper defers to [14-16], and why\n"
              "NAMD pairs PME with multiple timestepping (see\n"
              "examples/full_electrostatics).\n");

  perf::BenchReport report = perf::make_report("fullelec");
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}
