// Reproduces the section 4.2 narrative: the staged optimizations that took
// the 1024-PE ApoA-I step from ~120 ms to ~82 ms. Stages are cumulative:
//   A  baseline: coarse grains (no face-pair splitting), non-migratable
//      bonded work, naive multicast
//   B  + grain-size control (section 4.2.1, Figures 1-2)
//   C  + migratable intra-patch bonded computes (section 4.2.2)
//   D  + optimized multicast (section 4.2.3)  == the shipping configuration
// `--json [path]` / `--out <path>` emit per-stage times as a scalemd-bench
// report.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"

namespace {

double staged_time(const scalemd::Molecule& mol, bool split_self, bool split_pairs,
                   bool migratable_bonded, bool optimized_multicast) {
  using namespace scalemd;
  ComputePlanOptions plan;
  plan.split_self = split_self;
  plan.split_face_pairs = split_pairs;
  plan.migratable_intra_bonded = migratable_bonded;
  const Workload wl(mol, MachineModel::asci_red(), {}, plan);

  ParallelOptions opts;
  opts.num_pes = 1024;
  opts.machine = MachineModel::asci_red();
  opts.optimized_multicast = optimized_multicast;
  ParallelSim sim(wl, opts);
  return sim.run_benchmark(3, 5);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = apoa1_like();
  std::printf("Optimization ablation: %s on 1024 PEs of ASCI-Red\n"
              "(paper narrative: 120 ms/step before this round of "
              "optimizations, 82 ms after)\n\n", mol.name.c_str());

  Table t({"stage", "ms/step", "speedup vs 1 PE"});
  const double t1 = 57.04;  // calibrated single-PE step, seconds
  struct Stage {
    const char* name;
    const char* slug;
    bool split_self, split_pairs, bonded, multicast;
  };
  const Stage stages[] = {
      {"A: monolithic computes (14 per cube)", "A_monolithic",
       false, false, false, false},
      {"B: + split self computes by atoms", "B_split_self",
       true, false, false, false},
      {"C: + split face-pair computes (4.2.1)", "C_split_pairs",
       true, true, false, false},
      {"D: + migratable intra bonded (4.2.2)", "D_migratable_bonded",
       true, true, true, false},
      {"E: + optimized multicast (4.2.3)", "E_optimized_multicast",
       true, true, true, true},
  };
  perf::BenchRunner runner;
  for (const Stage& s : stages) {
    const double sec =
        staged_time(mol, s.split_self, s.split_pairs, s.bonded, s.multicast);
    t.add_row({s.name, fmt_fixed(sec * 1e3, 1), fmt_sig(t1 / sec, 3)});
    runner
        .record_value(std::string("ablation_opt/") + s.slug,
                      "virtual_seconds_per_step", sec)
        .param("pes", 1024)
        .param("speedup_vs_1pe", t1 / sec)
        .label("stage", s.slug);
  }
  std::printf("%s", t.render().c_str());

  perf::BenchReport report = perf::make_report("ablation_opt");
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}
