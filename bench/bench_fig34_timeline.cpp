// Reproduces Figures 3 and 4: Projections-style timeline views of two
// timesteps, before and after the optimized multicast (section 4.2.3). The
// view centers on the boundary between processors that own patches (and so
// carry the integration blocks, 'I') and processors beyond the patch count
// that only run compute objects — the idle gaps after each integration
// shrink once coordinate multicasts pack only once.
// `--json [path]` / `--out <path>` emit each case's step time over the
// rendered window as a scalemd-bench report.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"
#include "trace/event_log.hpp"
#include "trace/timeline.hpp"

namespace {

double run_case(const char* title, const scalemd::Workload& wl, bool optimized) {
  using namespace scalemd;
  ParallelOptions opts;
  opts.num_pes = 400;  // beyond the 245 patches, as in the paper's figures
  opts.machine = MachineModel::asci_red();
  opts.optimized_multicast = optimized;
  ParallelSim sim(wl, opts);
  sim.run_cycle(3);
  sim.load_balance(false);
  sim.run_cycle(3);
  sim.load_balance(true);

  EventLog log;
  sim.attach_sink(&log);
  sim.run_cycle(3);

  TimelineOptions view;
  view.t0 = sim.step_completion().end()[-3];  // start of the last two steps
  view.t1 = sim.step_completion().back();
  view.first_pe = 240;
  view.num_pes = 12;
  view.width = 100;
  std::printf("%s\n%s\n", title,
              render_timeline(log, sim.sim().entries(), view).c_str());
  return (view.t1 - view.t0) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::asci_red());
  std::printf("Figures 3-4: timeline of two timesteps, %s on 400 PEs\n"
              "(PEs 240..251 straddle the last patch-owning processors)\n\n",
              mol.name.c_str());
  const double naive =
      run_case("Figure 3: naive multicast (one pack per destination)", wl, false);
  const double optimized =
      run_case("Figure 4: optimized multicast (single pack)", wl, true);

  perf::BenchReport report = perf::make_report("fig34");
  perf::BenchRunner runner;
  runner.record_value("fig34/naive_multicast", "virtual_seconds_per_step", naive)
      .param("pes", 400);
  runner
      .record_value("fig34/optimized_multicast", "virtual_seconds_per_step",
                    optimized)
      .param("pes", 400);
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}
