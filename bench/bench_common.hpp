#pragma once

// Shared helpers for the table/figure bench binaries: each binary rebuilds
// one table or figure of the paper and prints the reproduced values next to
// the published ones. Absolute times come from a calibrated machine model
// (see EXPERIMENTS.md); the claim under test is the *shape* of each result.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "perf/bench_runner.hpp"
#include "perf/report.hpp"
#include "perf/suites.hpp"
#include "util/table.hpp"

namespace scalemd::bench {

/// Flags every bench binary shares. `--json [path]` / `--out <path>` switch
/// on machine-readable output in the scalemd-bench report schema (stdout
/// unless a path is given); `--reps`/`--warmup` configure the BenchRunner
/// for the wall-clock binaries (ignored by deterministic model sweeps).
/// Unrecognized arguments land in `passthrough` (argv[0] first) for
/// binaries that forward to google-benchmark.
struct CommonArgs {
  perf::BenchOptions bench;  ///< reps / warmup
  bool json = false;
  std::string out;  ///< empty with json=true means stdout
  std::vector<char*> passthrough;
  bool error = false;  ///< a flag was missing its value
};

inline CommonArgs parse_common_args(int argc, char** argv) {
  CommonArgs a;
  a.passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const auto next_val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--reps") == 0) {
      const char* v = next_val();
      if (v == nullptr) { a.error = true; break; }
      a.bench.reps = std::atoi(v);
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      const char* v = next_val();
      if (v == nullptr) { a.error = true; break; }
      a.bench.warmup = std::atoi(v);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = next_val();
      if (v == nullptr) { a.error = true; break; }
      a.out = v;
      a.json = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      a.json = true;
      // Optional path operand: bare --json prints the report to stdout.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        a.out = argv[++i];
      }
    } else {
      a.passthrough.push_back(argv[i]);
    }
  }
  if (a.error) {
    std::fprintf(stderr,
                 "usage: [--reps N] [--warmup N] [--json [path]] [--out path]\n");
  }
  return a;
}

/// Writes the report if --json/--out was given. Returns a main()-ready exit
/// code (I/O failure only).
inline int emit_report(const CommonArgs& a, const perf::BenchReport& report) {
  if (!a.json) return 0;
  if (a.out.empty()) {
    std::printf("%s\n", report.to_json().dump().c_str());
    return 0;
  }
  try {
    perf::save_report(report, a.out);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::printf("wrote %s\n", a.out.c_str());
  return 0;
}

/// Published (processors -> s/step) reference series for one paper table.
using PaperSeries = std::map<int, double>;

inline const PaperSeries kPaperTable2{{1, 57.1},     {4, 14.7},    {8, 7.31},
                                      {32, 1.9},     {64, 0.964},  {128, 0.493},
                                      {256, 0.259},  {512, 0.152}, {768, 0.102},
                                      {1024, 0.0822},{1536, 0.0645},{2048, 0.0573}};

inline const PaperSeries kPaperTable3{{2, 74.2},     {4, 37.8},    {8, 19.3},
                                      {32, 4.91},    {64, 2.49},   {128, 1.26},
                                      {256, 0.653},  {512, 0.352}, {768, 0.246},
                                      {1024, 0.192}, {1536, 0.141},{2048, 0.119}};

inline const PaperSeries kPaperTable4{{1, 1.47},   {2, 0.759},  {4, 0.384},
                                      {8, 0.196},  {32, 0.071}, {64, 0.0358},
                                      {128, 0.0299},{256, 0.0300}};

inline const PaperSeries kPaperTable5{{4, 10.7},  {8, 5.28},   {16, 2.64},
                                      {32, 1.35}, {64, 0.688}, {128, 0.356},
                                      {256, 0.185}};

inline const PaperSeries kPaperTable6{{1, 24.4}, {2, 12.5},  {4, 6.30}, {8, 3.18},
                                      {16, 1.60},{32, 0.860},{64, 0.411},
                                      {80, 0.349}};

/// Renders a scaling table with a side-by-side paper column.
inline std::string render_with_paper(const std::vector<ScalingRow>& rows,
                                     const PaperSeries& paper, bool gflops) {
  std::vector<std::string> header{"Processors", "Time (s/step)", "Speedup"};
  if (gflops) header.push_back("GFLOPS");
  header.push_back("paper s/step");
  header.push_back("paper speedup");
  Table t(std::move(header));
  const double paper_base =
      paper.empty() ? 1.0 : paper.begin()->second * paper.begin()->first;
  for (const ScalingRow& r : rows) {
    std::vector<std::string> row{std::to_string(r.pes),
                                 fmt_sig(r.seconds_per_step, 3),
                                 fmt_sig(r.speedup, r.speedup < 10 ? 2 : 3)};
    if (gflops) row.push_back(fmt_sig(r.gflops, 3));
    const auto it = paper.find(r.pes);
    if (it != paper.end()) {
      row.push_back(fmt_sig(it->second, 3));
      row.push_back(fmt_sig(paper_base / it->second, 3));
    } else {
      row.push_back("-");
      row.push_back("-");
    }
    t.add_row(std::move(row));
  }
  return t.render();
}

/// Clips a processor ladder by SCALEMD_BENCH_SCALE < 1 (smoke runs).
inline std::vector<int> maybe_clip(std::vector<int> pes) {
  return perf::clip_ladder(std::move(pes), bench_scale_from_env());
}

}  // namespace scalemd::bench
