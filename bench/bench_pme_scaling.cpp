// Scaling of the *real* parallel-PME pipeline (src/core/parallel_sim.cpp):
// patches deposit charges onto slab objects, the slab-decomposed 3D FFT
// exchanges transpose messages, and the reciprocal forces ride force-return
// messages back — all as first-class DES objects under the machine model.
// This replaces the closed-form estimate of bench_ext_fullelec with the
// message-driven runtime actually scheduling the phases.
//
// Three experiments:
//   1. Per-phase modeled cost (spread / FFT / gather) of one slab's critical
//      path as the PE count (and with it the slab count) grows.
//   2. End-to-end s/step: cutoff-only vs cutoff + parallel PME.
//   3. Dedicated-PME-ranks ablation: pinning the slabs onto a tail of
//      reserved PEs vs spreading them round-robin over all PEs.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/parallel_sim.hpp"
#include "ewald/full_elec.hpp"
#include "ewald/pme_slab.hpp"
#include "gen/presets.hpp"

namespace {

using namespace scalemd;

FullElecOptions bench_full_elec() {
  FullElecOptions fe;
  fe.enabled = true;
  fe.alpha = 0.35;
  fe.grid_x = fe.grid_y = fe.grid_z = 64;
  fe.order = 4;
  return fe;
}

/// The three modeled phase components of one slab, mirroring the charges
/// ParallelSim::pme_phase_cost applies (spread and gather are symmetric; the
/// FFT part sums the forward/inverse 2D halves and the full-z column FFTs).
struct SlabPhaseCost {
  double spread = 0.0;
  double fft = 0.0;
  double gather = 0.0;
  double total() const { return spread + fft + gather; }
};

SlabPhaseCost slab_phase_cost(const PmeSlabPlan& plan, int slab, int atoms,
                              const MachineModel& m) {
  const PmeOptions& o = plan.options();
  const double stencil = static_cast<double>(atoms) *
                         std::pow(static_cast<double>(o.order), 3.0) /
                         static_cast<double>(plan.slabs());
  const double lx = std::log2(static_cast<double>(o.grid_x));
  const double ly = std::log2(static_cast<double>(o.grid_y));
  const double lz = std::log2(static_cast<double>(o.grid_z));
  SlabPhaseCost c;
  c.spread = stencil * m.pme_spread_cost;
  c.gather = stencil * m.pme_spread_cost;
  c.fft = 2.0 * static_cast<double>(plan.plane_points(slab)) * (lx + ly) *
              m.fft_point_cost +
          static_cast<double>(plan.column_points(slab)) * (2.0 * lz + 1.0) *
              m.fft_point_cost;
  return c;
}

double run_seconds_per_step(const Workload& wl, int pes, int slabs,
                            int dedicated, const MachineModel& machine) {
  ParallelOptions opts;
  opts.num_pes = pes;
  opts.machine = machine;
  opts.pme.slabs = slabs;
  opts.pme.dedicated_ranks = dedicated;
  ParallelSim sim(wl, opts);
  return sim.run_benchmark(3, 5);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = apoa1_like();
  const MachineModel machine = MachineModel::asci_red();
  NonbondedOptions nb_cut;
  NonbondedOptions nb_pme = nb_cut;
  nb_pme.full_elec = bench_full_elec();
  const Workload cutoff_wl(mol, machine, nb_cut);
  const Workload pme_wl(mol, machine, nb_pme);

  std::printf(
      "Parallel PME in the message-driven runtime, %s on ASCI-Red\n"
      "(64^3 grid, order 4; slabs = min(pes, 16); modeled virtual seconds)\n\n",
      mol.name.c_str());

  perf::BenchRunner runner;

  // --- 1: per-phase critical path vs PE count ---------------------------
  Table phases({"Processors", "slabs", "spread", "FFT", "gather", "PME total"});
  for (int pes : {1, 2, 4, 8, 16, 32, 64}) {
    const int slabs = std::min(pes, 16);
    const PmeSlabPlan plan(mol.box, to_pme_options(nb_pme.full_elec), slabs);
    SlabPhaseCost worst;
    for (int s = 0; s < slabs; ++s) {
      const SlabPhaseCost c =
          slab_phase_cost(plan, s, mol.atom_count(), machine);
      if (c.total() > worst.total()) worst = c;
    }
    phases.add_row({std::to_string(pes), std::to_string(slabs),
                    fmt_sig(worst.spread, 3), fmt_sig(worst.fft, 3),
                    fmt_sig(worst.gather, 3), fmt_sig(worst.total(), 3)});
    runner
        .record_value("pme_scaling/phase/pes=" + std::to_string(pes),
                      "virtual_seconds_per_step", worst.total())
        .param("pes", pes)
        .param("slabs", slabs)
        .param("spread_seconds", worst.spread)
        .param("fft_seconds", worst.fft)
        .param("gather_seconds", worst.gather);
  }
  std::printf("%s\n", phases.render().c_str());

  // --- 2: end-to-end cutoff vs cutoff + PME -----------------------------
  Table endToEnd({"Processors", "cutoff only", "with PME", "PME overhead"});
  double base_cut = 0.0, base_pme = 0.0;
  for (int pes : {1, 2, 4, 8, 16, 32, 64}) {
    const int slabs = std::min(pes, 16);
    const double cut = run_seconds_per_step(cutoff_wl, pes, slabs, 0, machine);
    const double pme = run_seconds_per_step(pme_wl, pes, slabs, 0, machine);
    if (base_cut == 0.0) { base_cut = cut; base_pme = pme; }
    endToEnd.add_row({std::to_string(pes), fmt_sig(cut, 3), fmt_sig(pme, 3),
                      fmt_fixed(100.0 * (pme - cut) / pme, 1) + "%"});
    runner
        .record_value("pme_scaling/with_pme/pes=" + std::to_string(pes),
                      "virtual_seconds_per_step", pme)
        .param("pes", pes)
        .param("cutoff_seconds", cut)
        .param("pme_overhead", (pme - cut) / pme);
  }
  std::printf("%s\n", endToEnd.render().c_str());
  std::printf("speedup at 64 PEs: cutoff %s, with PME %s\n\n",
              fmt_sig(base_cut /
                          run_seconds_per_step(cutoff_wl, 64, 16, 0, machine),
                      3)
                  .c_str(),
              fmt_sig(base_pme / run_seconds_per_step(pme_wl, 64, 16, 0, machine),
                      3)
                  .c_str());

  // --- 3: dedicated-PME-ranks ablation at 32 PEs ------------------------
  Table dedicated({"dedicated ranks", "s/step", "vs spread"});
  double spread_base = 0.0;
  for (int ded : {0, 1, 2, 4, 8}) {
    const double s = run_seconds_per_step(pme_wl, 32, 8, ded, machine);
    if (ded == 0) spread_base = s;
    dedicated.add_row({std::to_string(ded), fmt_sig(s, 3),
                       fmt_fixed(100.0 * (s - spread_base) / spread_base, 1) +
                           "%"});
    runner
        .record_value("pme_scaling/dedicated/ded=" + std::to_string(ded),
                      "virtual_seconds_per_step", s)
        .param("pes", 32)
        .param("slabs", 8)
        .param("dedicated", ded);
  }
  std::printf("%s\n", dedicated.render().c_str());
  std::printf(
      "Slabs placed round-robin interleave with patch/compute work; a small\n"
      "dedicated tail removes that contention at the price of idling the\n"
      "reserved PEs between reciprocal phases — the classic NAMD trade-off.\n");

  perf::BenchReport report = perf::make_report("pme_scaling");
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}
