// Load-balancing strategy ablation (section 3.2): the measurement-based
// greedy+refine strategy against no balancing (static placement), random
// placement, and a communication-blind greedy. Also reports the proxy
// counts each strategy induces — the communication price of ignoring the
// object communication graph. `--json [path]` / `--out <path>` emit the
// per-strategy step times as a scalemd-bench report.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"
#include "trace/summary.hpp"
#include "util/stats.hpp"

namespace {

struct Result {
  double ms_per_step;
  int proxies;
  double imbalance;
};

Result run_with(const scalemd::Workload& wl, scalemd::LbStrategyKind kind, int pes) {
  using namespace scalemd;
  ParallelOptions opts;
  opts.num_pes = pes;
  opts.machine = MachineModel::asci_red();
  opts.lb.kind = kind;
  ParallelSim sim(wl, opts);
  SummaryProfile prof(sim.sim().entries(), pes);
  const double sec = [&] {
    sim.run_cycle(3);
    sim.load_balance(false);
    sim.run_cycle(3);
    sim.load_balance(true);
    sim.attach_sink(&prof);
    sim.run_cycle(5);
    return sim.seconds_per_step_tail(5);
  }();
  return {sec * 1e3, sim.proxy_count(), imbalance_ratio(prof.busy_times())};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::asci_red());

  std::printf("Load-balancing strategy ablation: %s on ASCI-Red\n\n",
              mol.name.c_str());

  const struct {
    const char* name;
    const char* slug;
    LbStrategyKind kind;
  } strategies[] = {
      {"none (static initial placement)", "none", LbStrategyKind::kNone},
      {"random", "random", LbStrategyKind::kRandom},
      {"greedy, comm-blind", "greedy_nocomm", LbStrategyKind::kGreedyNoComm},
      {"diffusion (distributed)", "diffusion", LbStrategyKind::kDiffusion},
      {"greedy, proxy-aware", "greedy", LbStrategyKind::kGreedy},
      {"greedy + refine (paper)", "greedy_refine", LbStrategyKind::kGreedyRefine},
  };

  perf::BenchRunner runner;
  for (int pes : {256, 1024}) {
    Table t({"strategy", "ms/step", "proxies", "max/avg load"});
    for (const auto& s : strategies) {
      const Result r = run_with(wl, s.kind, pes);
      t.add_row({s.name, fmt_fixed(r.ms_per_step, 1), std::to_string(r.proxies),
                 fmt_fixed(r.imbalance, 2)});
      runner
          .record_value(std::string("ablation_lb/") + s.slug +
                            "/pes=" + std::to_string(pes),
                        "virtual_ms_per_step", r.ms_per_step)
          .param("pes", pes)
          .param("proxies", r.proxies)
          .param("imbalance", r.imbalance)
          .label("strategy", s.slug);
    }
    std::printf("P = %d:\n%s\n", pes, t.render().c_str());
  }

  perf::BenchReport report = perf::make_report("ablation_lb");
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}
