// Reproduces Table 6: ApoA-I scaling on the SGI Origin 2000 model (1..80
// processors; the fastest per-processor machine of the three).

#include "bench_common.hpp"
#include "gen/presets.hpp"

int main() {
  using namespace scalemd;
  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::origin2000());

  BenchmarkConfig cfg;
  cfg.machine = MachineModel::origin2000();
  cfg.pe_counts = bench::maybe_clip({1, 2, 4, 8, 16, 32, 64, 80});

  std::printf("Table 6: %s (%d atoms) on %s\n\n", mol.name.c_str(),
              mol.atom_count(), cfg.machine.name.c_str());
  const auto rows = run_scaling(wl, cfg);
  std::printf("%s\n", bench::render_with_paper(rows, bench::kPaperTable6, true).c_str());
  return 0;
}
