// Reproduces Table 6: ApoA-I scaling on the SGI Origin 2000 model (1..80
// processors; the fastest per-processor machine of the three).
// `--json [path]` / `--out <path>` emit a scalemd-bench report.

#include "bench_common.hpp"
#include "gen/presets.hpp"

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::origin2000());

  BenchmarkConfig cfg;
  cfg.machine = MachineModel::origin2000();
  cfg.pe_counts = bench::maybe_clip({1, 2, 4, 8, 16, 32, 64, 80});

  std::printf("Table 6: %s (%d atoms) on %s\n\n", mol.name.c_str(),
              mol.atom_count(), cfg.machine.name.c_str());
  const auto rows = run_scaling(wl, cfg);
  std::printf("%s\n", bench::render_with_paper(rows, bench::kPaperTable6, true).c_str());

  perf::BenchReport report = perf::make_report("table6");
  perf::append_scaling_records(report, "table6", rows);
  return bench::emit_report(args, report);
}
