// Micro-benchmarks (google-benchmark) of the runtime substrate: DES event
// throughput, multicast sender cost (naive vs optimized — section 4.2.3 at
// the microscope), and reduction trees.
//
// Backend mode (`--backend sim|threads`, also `--backend=...`): runs the
// waterbox through the full parallel runtime on the chosen execution
// backend and reports per-step time — virtual seconds for the DES machine,
// measured wall-clock seconds for the threaded backend. Flags:
//   --pes N       virtual processors (default 8)
//   --threads N   threaded-backend workers (0 = all hardware threads)
//   --steps N     timed steps after the LB warm-up (default 5)
//   --box S       cubic box side in A (default 97.0, ~89k atoms)
//   --json [path] emit a scalemd-bench report (stdout when no path follows);
//   --out <path>  same, always to a file
//   --audit       run BOTH backends and print the Ideal/Modeled/Measured
//                 audit table (modeled-vs-measured methodology)
// Compare `--backend=threads --threads=8` against `--threads=1` for the
// shared-memory speedup; run without any of these flags for the registered
// google-benchmark microbenches.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel_sim.hpp"
#include "des/simulator.hpp"
#include "gen/water_box.hpp"
#include "rts/multicast.hpp"
#include "rts/reduction.hpp"
#include "trace/audit.hpp"
#include "trace/summary.hpp"

namespace scalemd {
namespace {

void BM_SchedulerThroughput(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim(8, MachineModel::asci_red());
    for (int i = 0; i < tasks; ++i) {
      sim.inject(i % 8, {.fn = [](ExecContext& c) { c.charge(1e-6); }});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.time());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1000)->Arg(10000);

void BM_MessageChain(benchmark::State& state) {
  // A ping-pong chain of remote messages: measures per-event DES cost.
  const int hops = 1000;
  for (auto _ : state) {
    Simulator sim(2, MachineModel::asci_red());
    std::function<void(ExecContext&, int)> hop = [&](ExecContext& ctx, int left) {
      if (left == 0) return;
      ctx.send(1 - ctx.pe(), {.bytes = 64, .fn = [&hop, left](ExecContext& c) {
                                hop(c, left - 1);
                              }});
    };
    sim.inject(0, {.fn = [&](ExecContext& ctx) { hop(ctx, hops); }});
    sim.run();
    benchmark::DoNotOptimize(sim.time());
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_MessageChain);

void BM_Multicast(benchmark::State& state) {
  const bool optimized = state.range(0) != 0;
  const int fanout = 64;
  std::vector<int> dests;
  for (int pe = 1; pe <= fanout; ++pe) dests.push_back(pe);
  for (auto _ : state) {
    Simulator sim(fanout + 1, MachineModel::asci_red());
    sim.inject(0, {.fn = [&](ExecContext& ctx) {
                     multicast(ctx, dests, 9000, optimized, [](int) {
                       TaskMsg m;
                       m.fn = [](ExecContext&) {};
                       return m;
                     });
                   }});
    sim.run();
    benchmark::DoNotOptimize(sim.pe_busy(0));
  }
}
BENCHMARK(BM_Multicast)->Arg(0)->Arg(1)->ArgNames({"optimized"});

void BM_ReductionTree(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  std::vector<int> contributors;
  for (int pe = 0; pe < pes; ++pe) contributors.push_back(pe);
  for (auto _ : state) {
    Simulator sim(pes, MachineModel::asci_red());
    const EntryId e = sim.entries().add("reduce", WorkCategory::kComm);
    double total = 0.0;
    Reducer red(contributors, e, [&](int, double v) { total = v; });
    for (int pe = 0; pe < pes; ++pe) {
      sim.inject(pe, {.fn = [&red, pe](ExecContext& ctx) {
                        red.contribute(ctx, pe, 0, 1.0);
                      }});
    }
    sim.run();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ReductionTree)->Arg(64)->Arg(1024);

// ---------------------------------------------------------------------------
// Backend mode: the parallel runtime end to end, DES vs real threads.
// ---------------------------------------------------------------------------

struct BackendRun {
  BackendKind backend;
  bool wall_clock = false;
  int steps = 0;
  double seconds_per_step = 0.0;  ///< tail average over the timed cycle
  double window_seconds = 0.0;    ///< timed-cycle span in the backend's clock
  AuditRow audit;
  AuditRow ideal;
};

BackendRun run_backend_once(const Workload& wl, BackendKind backend, int pes,
                            int threads, int steps) {
  ParallelOptions opts;
  opts.num_pes = pes;
  opts.numeric = true;
  opts.dt_fs = 1.0;
  opts.backend = backend;
  opts.threads = threads;
  ParallelSim sim(wl, opts);

  // LB warm-up exactly as the paper runs it: measure, greedy, measure,
  // refine — then the timed window.
  sim.run_cycle(2);
  sim.load_balance(/*refine_only=*/false);
  sim.run_cycle(2);
  sim.load_balance(/*refine_only=*/true);

  SummaryProfile prof(sim.backend().entries(), pes);
  prof.set_wall_clock(sim.backend().wall_clock());
  sim.attach_sink(&prof);
  const double t0 = sim.backend().time();
  sim.run_cycle(steps);

  BackendRun r;
  r.backend = backend;
  r.wall_clock = sim.backend().wall_clock();
  r.steps = steps;
  r.window_seconds = sim.backend().time() - t0;
  r.seconds_per_step = sim.seconds_per_step_tail(steps);
  // A cycle of `steps` steps evaluates forces steps + 1 times.
  r.audit = actual_audit(prof, r.window_seconds, pes, steps + 1);
  r.ideal = ideal_audit(sim.ideal_nonbonded_seconds() * (steps + 1),
                        sim.ideal_bonded_seconds() * (steps + 1),
                        sim.ideal_integration_seconds() * (steps + 1), pes,
                        steps + 1);
  return r;
}

int run_backend_bench(BackendKind backend, int pes, int threads, int steps,
                      double box_side, bool audit,
                      const bench::CommonArgs& args) {
  Molecule mol = make_water_box({box_side, box_side, box_side}, /*seed=*/42);
  mol.assign_velocities(300.0, /*seed=*/7);
  std::printf("water box %.0f A side, %d atoms, %d PEs, %d timed steps\n",
              box_side, mol.atom_count(), pes, steps);
  const Workload wl(mol, MachineModel::asci_red());

  const BackendRun r = run_backend_once(wl, backend, pes, threads, steps);
  std::printf("%s backend: %.6f %s s/step (window %.6f s)\n",
              backend_name(r.backend), r.seconds_per_step,
              r.wall_clock ? "wall-clock" : "virtual", r.window_seconds);

  if (audit) {
    // Modeled vs measured, side by side: the DES run predicts, the threaded
    // run measures. Reuse `r` for whichever side the caller asked for.
    const BackendRun modeled = backend == BackendKind::kSimulated
                                   ? r
                                   : run_backend_once(wl, BackendKind::kSimulated,
                                                      pes, threads, steps);
    const BackendRun measured = backend == BackendKind::kThreaded
                                    ? r
                                    : run_backend_once(wl, BackendKind::kThreaded,
                                                       pes, threads, steps);
    std::printf("\n%s\n",
                render_audit(modeled.ideal, modeled.audit, measured.audit).c_str());
  }

  perf::BenchReport report = perf::make_report("micro_runtime");
  perf::BenchRunner runner(args.bench);
  perf::BenchRecord* rec;
  const std::string name =
      std::string("micro_runtime/") + backend_name(r.backend) + "/step";
  if (r.wall_clock) {
    rec = &runner.record_samples(name, "seconds_per_step", {r.seconds_per_step});
  } else {
    rec = &runner.record_value(name, "virtual_seconds_per_step",
                               r.seconds_per_step);
  }
  rec->param("pes", pes)
      .param("threads", threads)
      .param("atoms", mol.atom_count())
      .param("steps", r.steps)
      .param("window_seconds", r.window_seconds)
      .label("backend", backend_name(r.backend))
      .label("clock", r.wall_clock ? "wall" : "virtual");
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}

}  // namespace
}  // namespace scalemd

int main(int argc, char** argv) {
  using scalemd::BackendKind;

  scalemd::bench::CommonArgs common =
      scalemd::bench::parse_common_args(argc, argv);
  if (common.error) return 2;

  bool have_backend = common.json;  // a report request implies backend mode
  bool audit = false;
  BackendKind backend = BackendKind::kSimulated;
  int pes = 8;
  int threads = 0;
  int steps = 5;
  double box_side = 97.0;
  std::vector<char*> passthrough{common.passthrough.front()};
  for (std::size_t i = 1; i < common.passthrough.size(); ++i) {
    char* arg = common.passthrough[i];
    const auto next_val = [&]() -> const char* {
      return i + 1 < common.passthrough.size() ? common.passthrough[++i] : nullptr;
    };
    const char* backend_arg = nullptr;
    if (std::strncmp(arg, "--backend=", 10) == 0) {
      backend_arg = arg + 10;
    } else if (std::strcmp(arg, "--backend") == 0) {
      backend_arg = next_val();
    }
    if (backend_arg != nullptr) {
      if (!scalemd::backend_from_name(backend_arg, backend)) {
        std::fprintf(stderr, "unknown backend '%s' (want sim|threads)\n",
                     backend_arg);
        return 1;
      }
      have_backend = true;
    } else if (std::strcmp(arg, "--audit") == 0) {
      audit = true;
      have_backend = true;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (const char* v = next_val()) threads = std::atoi(v);
    } else if (std::strcmp(arg, "--pes") == 0) {
      if (const char* v = next_val()) pes = std::atoi(v);
    } else if (std::strcmp(arg, "--steps") == 0) {
      if (const char* v = next_val()) steps = std::atoi(v);
    } else if (std::strcmp(arg, "--box") == 0) {
      if (const char* v = next_val()) box_side = std::atof(v);
    } else {
      passthrough.push_back(arg);
    }
  }
  if (have_backend) {
    return scalemd::run_backend_bench(backend, pes, threads, steps, box_side,
                                      audit, common);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
