// Micro-benchmarks (google-benchmark) of the runtime substrate: DES event
// throughput, multicast sender cost (naive vs optimized — section 4.2.3 at
// the microscope), and reduction trees.

#include <benchmark/benchmark.h>

#include "des/simulator.hpp"
#include "rts/multicast.hpp"
#include "rts/reduction.hpp"

namespace scalemd {
namespace {

void BM_SchedulerThroughput(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim(8, MachineModel::asci_red());
    for (int i = 0; i < tasks; ++i) {
      sim.inject(i % 8, {.fn = [](ExecContext& c) { c.charge(1e-6); }});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.time());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1000)->Arg(10000);

void BM_MessageChain(benchmark::State& state) {
  // A ping-pong chain of remote messages: measures per-event DES cost.
  const int hops = 1000;
  for (auto _ : state) {
    Simulator sim(2, MachineModel::asci_red());
    std::function<void(ExecContext&, int)> hop = [&](ExecContext& ctx, int left) {
      if (left == 0) return;
      ctx.send(1 - ctx.pe(), {.bytes = 64, .fn = [&hop, left](ExecContext& c) {
                                hop(c, left - 1);
                              }});
    };
    sim.inject(0, {.fn = [&](ExecContext& ctx) { hop(ctx, hops); }});
    sim.run();
    benchmark::DoNotOptimize(sim.time());
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_MessageChain);

void BM_Multicast(benchmark::State& state) {
  const bool optimized = state.range(0) != 0;
  const int fanout = 64;
  std::vector<int> dests;
  for (int pe = 1; pe <= fanout; ++pe) dests.push_back(pe);
  for (auto _ : state) {
    Simulator sim(fanout + 1, MachineModel::asci_red());
    sim.inject(0, {.fn = [&](ExecContext& ctx) {
                     multicast(ctx, dests, 9000, optimized, [](int) {
                       TaskMsg m;
                       m.fn = [](ExecContext&) {};
                       return m;
                     });
                   }});
    sim.run();
    benchmark::DoNotOptimize(sim.pe_busy(0));
  }
}
BENCHMARK(BM_Multicast)->Arg(0)->Arg(1)->ArgNames({"optimized"});

void BM_ReductionTree(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  std::vector<int> contributors;
  for (int pe = 0; pe < pes; ++pe) contributors.push_back(pe);
  for (auto _ : state) {
    Simulator sim(pes, MachineModel::asci_red());
    const EntryId e = sim.entries().add("reduce", WorkCategory::kComm);
    double total = 0.0;
    Reducer red(contributors, e, [&](int, double v) { total = v; });
    for (int pe = 0; pe < pes; ++pe) {
      sim.inject(pe, {.fn = [&red, pe](ExecContext& ctx) {
                        red.contribute(ctx, pe, 0, 1.0);
                      }});
    }
    sim.run();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ReductionTree)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace scalemd
