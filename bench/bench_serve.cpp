// Serve-layer throughput: one fixed 6-job batch (a dt sweep sharing one
// topology plus a 2-replica fan-out) run through the BatchScheduler at
// several worker counts, with and without the derived-topology artifact
// cache. Reports seconds per batch (the gated, time-valued metric) with
// jobs/hour and aggregate steps/sec as params, plus the deterministic cache
// hit rate.
//
//   bench_serve [--reps N] [--warmup N] [--json [path] | --out path]
//   bench_serve --workers 1,2,4     worker counts to sweep (default 1,2,4)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/scheduler.hpp"

namespace scalemd {
namespace {

BatchSpec make_bench_batch() {
  BatchSpec batch;
  for (int j = 0; j < 4; ++j) {
    JobSpec job;
    job.name = "sweep" + std::to_string(j);
    job.priority = j % 2;
    job.scenario.seed = 42;  // one topology across the sweep jobs
    job.scenario.box = 10.0;
    job.scenario.num_pes = 2;
    job.scenario.dt_fs = 0.5 + 0.25 * j;  // the swept axis
    job.scenario.cycles = 2;
    job.scenario.steps = 2;
    batch.jobs.push_back(job);
  }
  JobSpec rep;
  rep.name = "equil";
  rep.replicas = 2;
  rep.scenario.seed = 7;
  rep.scenario.box = 10.0;
  rep.scenario.num_pes = 2;
  rep.scenario.cycles = 2;
  rep.scenario.steps = 2;
  batch.jobs.push_back(rep);
  return batch;
}

struct BatchStats {
  double jobs_per_hour = 0.0;
  double steps_per_sec = 0.0;
  double hit_rate = 0.0;
};

BatchStats run_once(const BatchSpec& batch, int workers, bool use_cache,
                    int preempt_every) {
  ServeOptions sopts;
  sopts.workers = workers;
  sopts.preempt_every = preempt_every;
  sopts.use_cache = use_cache;
  WallTickSource wall;
  sopts.ticks = &wall;
  BatchScheduler sched(sopts);
  sched.submit_batch(batch);
  const ServeReport rep = sched.run();
  const double secs = rep.wall_seconds > 0.0 ? rep.wall_seconds : 1e-9;
  BatchStats s;
  s.jobs_per_hour = 3600.0 * static_cast<double>(rep.results.size()) / secs;
  s.steps_per_sec = static_cast<double>(rep.total_steps) / secs;
  const std::uint64_t lookups = rep.cache_hits + rep.cache_misses;
  s.hit_rate =
      lookups > 0 ? static_cast<double>(rep.cache_hits) / lookups : 0.0;
  return s;
}

}  // namespace
}  // namespace scalemd

int main(int argc, char** argv) {
  using namespace scalemd;
  bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  std::vector<int> worker_counts{1, 2, 4};
  for (std::size_t i = 1; i < args.passthrough.size(); ++i) {
    const char* a = args.passthrough[i];
    if (std::strcmp(a, "--workers") == 0 && i + 1 < args.passthrough.size()) {
      worker_counts.clear();
      std::string list = args.passthrough[++i];
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        worker_counts.push_back(
            std::atoi(list.substr(pos, comma - pos).c_str()));
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", a);
      return 2;
    }
  }

  const BatchSpec batch = make_bench_batch();
  const int jobs = static_cast<int>(expand_batch(batch).size());
  perf::BenchRunner runner(args.bench);

  for (int workers : worker_counts) {
    if (workers < 1) continue;
    BatchStats last;
    runner
        .time("serve/batch/workers=" + std::to_string(workers),
              "seconds_per_batch",
              [&] { last = run_once(batch, workers, true, 1); })
        .param("jobs", jobs)
        .param("workers", workers)
        .param("jobs_per_hour", last.jobs_per_hour)
        .param("steps_per_sec", last.steps_per_sec);
    std::printf("workers=%d: %8.1f jobs/hour, %8.0f steps/sec, "
                "cache hit rate %.0f%%\n",
                workers, last.jobs_per_hour, last.steps_per_sec,
                100.0 * last.hit_rate);
    if (workers == worker_counts.front()) {
      runner.record_value("serve/cache_hit_rate", "ratio", last.hit_rate);
      // The same batch with the artifact cache disabled, for the
      // cache-benefit delta in the printed table (not gated: cold builds
      // are the uncommon path).
      BatchStats cold;
      runner
          .time("serve/batch/no_cache", "seconds_per_batch",
                [&] { cold = run_once(batch, workers, false, 1); })
          .param("jobs", jobs)
          .param("workers", workers);
      std::printf("workers=%d (no cache): %8.1f jobs/hour\n", workers,
                  cold.jobs_per_hour);
    }
  }

  perf::BenchReport report = perf::make_report("serve");
  report.benchmarks = runner.take_records();
  return bench::emit_report(args, report);
}
