// Micro-benchmarks (google-benchmark) of the force kernels: non-bonded
// self/pair evaluation as a function of atom count, plus each bonded term.
// These measure this host's real kernel throughput — useful when porting or
// optimizing the kernels; the paper-reproduction tables use the calibrated
// 1999 machine models instead.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "ff/bonded.hpp"
#include "ff/nonbonded.hpp"
#include "topo/molecule.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

/// Shared fixture data: n atoms in a cube sized for liquid density.
struct KernelSetup {
  explicit KernelSetup(int n) {
    mol.box = {100, 100, 100};
    const int t = mol.params.add_lj_type(0.15, 1.8);
    mol.params.finalize();
    Rng rng(17);
    const double side = std::cbrt(n / 0.1);
    for (int i = 0; i < n; ++i) {
      mol.add_atom({12.0, i % 2 == 0 ? 0.3 : -0.3, t},
                   rng.point_in_box({side, side, side}));
      idx.push_back(i);
      pos.push_back(mol.positions()[static_cast<std::size_t>(i)]);
      charges.push_back(mol.atoms()[static_cast<std::size_t>(i)].charge);
      types.push_back(t);
    }
    frc.assign(static_cast<std::size_t>(n), Vec3{});
    excl = ExclusionTable::build(mol);
    ctx = std::make_unique<NonbondedContext>(mol.params, excl, charges, types,
                                             NonbondedOptions{});
  }

  Molecule mol;
  std::vector<int> idx;
  std::vector<Vec3> pos;
  std::vector<Vec3> frc;
  std::vector<double> charges;
  std::vector<int> types;
  ExclusionTable excl;
  std::unique_ptr<NonbondedContext> ctx;
};

void BM_NonbondedSelf(benchmark::State& state) {
  KernelSetup s(static_cast<int>(state.range(0)));
  WorkCounters w;
  for (auto _ : state) {
    std::fill(s.frc.begin(), s.frc.end(), Vec3{});
    const EnergyTerms e = nonbonded_self(*s.ctx, s.idx, s.pos, s.frc, w);
    benchmark::DoNotOptimize(e);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(w.pairs_tested), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NonbondedSelf)->Arg(64)->Arg(256)->Arg(1024);

void BM_NonbondedPairKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  KernelSetup s(2 * n);
  const std::span<const int> ia(s.idx.data(), static_cast<std::size_t>(n));
  const std::span<const int> ib(s.idx.data() + n, static_cast<std::size_t>(n));
  const std::span<const Vec3> pa(s.pos.data(), static_cast<std::size_t>(n));
  const std::span<const Vec3> pb(s.pos.data() + n, static_cast<std::size_t>(n));
  std::vector<Vec3> fa(static_cast<std::size_t>(n)), fb(static_cast<std::size_t>(n));
  WorkCounters w;
  for (auto _ : state) {
    const EnergyTerms e = nonbonded_ab(*s.ctx, ia, pa, fa, ib, pb, fb, w);
    benchmark::DoNotOptimize(e);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(w.pairs_tested), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NonbondedPairKernel)->Arg(128)->Arg(512);

void BM_BondKernel(benchmark::State& state) {
  const BondParam p{340.0, 1.09};
  Vec3 fa, fb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bond_energy_force({0.1, 0.2, 0.3}, {1.1, 0.9, 0.5}, p, fa, fb));
  }
}
BENCHMARK(BM_BondKernel);

void BM_AngleKernel(benchmark::State& state) {
  const AngleParam p{55.0, 1.9};
  Vec3 fa, fb, fc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(angle_energy_force({1.2, 0, 0}, {0, 0, 0},
                                                {0.4, 1.4, 0.3}, p, fa, fb, fc));
  }
}
BENCHMARK(BM_AngleKernel);

void BM_DihedralKernel(benchmark::State& state) {
  const DihedralParam p{1.4, 3, 0.5};
  Vec3 fa, fb, fc, fd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dihedral_energy_force(
        {0, 0, 0}, {1.5, 0.1, 0}, {2.0, 1.5, 0.2}, {3.4, 1.8, 1.0}, p, fa, fb, fc,
        fd));
  }
}
BENCHMARK(BM_DihedralKernel);

void BM_ExclusionCheck(benchmark::State& state) {
  // A long chain: every atom carries full 1-2/1-3 and 1-4 lists.
  Molecule mol;
  mol.box = {10000, 10, 10};
  const int t = mol.params.add_lj_type(0.1, 2.0);
  const int b = mol.params.add_bond_param(100, 1.5);
  mol.params.finalize();
  for (int i = 0; i < 1000; ++i) {
    mol.add_atom({12, 0, t}, {1.5 * i + 1, 5, 5});
    if (i > 0) mol.add_bond(i - 1, i, b);
  }
  const ExclusionTable excl = ExclusionTable::build(mol);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(excl.check(i % 1000, (i + 3) % 1000));
    ++i;
  }
}
BENCHMARK(BM_ExclusionCheck);

}  // namespace
}  // namespace scalemd
