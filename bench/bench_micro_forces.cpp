// Micro-benchmarks of the force kernels, in two modes.
//
// Default (google-benchmark): non-bonded self/pair evaluation as a function
// of atom count — scalar and tiled — plus each bonded term. These measure
// this host's real kernel throughput; the paper-reproduction tables use the
// calibrated 1999 machine models instead.
//
// Comparison mode (`--compare`, implied by `--json`/`--out`): builds one
// ApoA-I-scale water box, runs full SequentialEngine force evaluations under
// every kernel variant (scalar / tiled / tiled+threads) through the shared
// BenchRunner, cross-checks energies and work counters, and reports
// pairs/sec per variant. `--json [path]` / `--out <path>` write a
// scalemd-bench report ("micro_forces/<variant>" records).
// Options: --box <side A> (default 97), --reps/--warmup (BenchRunner
// defaults), --threads <n> (default 4). SCALEMD_BENCH_SCALE < 1 shrinks the
// box for smoke runs.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ff/bonded.hpp"
#include "ff/nonbonded.hpp"
#include "ff/nonbonded_tiled.hpp"
#include "gen/water_box.hpp"
#include "seq/engine.hpp"
#include "topo/molecule.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

/// Shared fixture data: n atoms in a cube sized for liquid density.
struct KernelSetup {
  explicit KernelSetup(int n) {
    mol.box = {100, 100, 100};
    const int t = mol.params.add_lj_type(0.15, 1.8);
    mol.params.finalize();
    Rng rng(17);
    const double side = std::cbrt(n / 0.1);
    for (int i = 0; i < n; ++i) {
      mol.add_atom({12.0, i % 2 == 0 ? 0.3 : -0.3, t},
                   rng.point_in_box({side, side, side}));
      idx.push_back(i);
      pos.push_back(mol.positions()[static_cast<std::size_t>(i)]);
      charges.push_back(mol.atoms()[static_cast<std::size_t>(i)].charge);
      types.push_back(t);
    }
    frc.assign(static_cast<std::size_t>(n), Vec3{});
    excl = ExclusionTable::build(mol);
    ctx = std::make_unique<NonbondedContext>(mol.params, excl, charges, types,
                                             NonbondedOptions{});
  }

  Molecule mol;
  std::vector<int> idx;
  std::vector<Vec3> pos;
  std::vector<Vec3> frc;
  std::vector<double> charges;
  std::vector<int> types;
  ExclusionTable excl;
  std::unique_ptr<NonbondedContext> ctx;
};

void BM_NonbondedSelf(benchmark::State& state) {
  KernelSetup s(static_cast<int>(state.range(0)));
  WorkCounters w;
  for (auto _ : state) {
    std::fill(s.frc.begin(), s.frc.end(), Vec3{});
    const EnergyTerms e = nonbonded_self(*s.ctx, s.idx, s.pos, s.frc, w);
    benchmark::DoNotOptimize(e);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(w.pairs_tested), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NonbondedSelf)->Arg(64)->Arg(256)->Arg(1024);

void BM_NonbondedSelfTiled(benchmark::State& state) {
  KernelSetup s(static_cast<int>(state.range(0)));
  TiledWorkspace ws;
  WorkCounters w;
  for (auto _ : state) {
    std::fill(s.frc.begin(), s.frc.end(), Vec3{});
    const EnergyTerms e = nonbonded_self_tiled(*s.ctx, s.idx, s.pos, s.frc, w, ws);
    benchmark::DoNotOptimize(e);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(w.pairs_tested), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NonbondedSelfTiled)->Arg(64)->Arg(256)->Arg(1024);

void BM_NonbondedPairKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  KernelSetup s(2 * n);
  const std::span<const int> ia(s.idx.data(), static_cast<std::size_t>(n));
  const std::span<const int> ib(s.idx.data() + n, static_cast<std::size_t>(n));
  const std::span<const Vec3> pa(s.pos.data(), static_cast<std::size_t>(n));
  const std::span<const Vec3> pb(s.pos.data() + n, static_cast<std::size_t>(n));
  std::vector<Vec3> fa(static_cast<std::size_t>(n)), fb(static_cast<std::size_t>(n));
  WorkCounters w;
  for (auto _ : state) {
    const EnergyTerms e = nonbonded_ab(*s.ctx, ia, pa, fa, ib, pb, fb, w);
    benchmark::DoNotOptimize(e);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(w.pairs_tested), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NonbondedPairKernel)->Arg(128)->Arg(512);

void BM_NonbondedPairKernelTiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  KernelSetup s(2 * n);
  const std::span<const int> ia(s.idx.data(), static_cast<std::size_t>(n));
  const std::span<const int> ib(s.idx.data() + n, static_cast<std::size_t>(n));
  const std::span<const Vec3> pa(s.pos.data(), static_cast<std::size_t>(n));
  const std::span<const Vec3> pb(s.pos.data() + n, static_cast<std::size_t>(n));
  std::vector<Vec3> fa(static_cast<std::size_t>(n)), fb(static_cast<std::size_t>(n));
  TiledWorkspace ws;
  WorkCounters w;
  for (auto _ : state) {
    const EnergyTerms e = nonbonded_ab_tiled(*s.ctx, ia, pa, fa, ib, pb, fb, w, ws);
    benchmark::DoNotOptimize(e);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(w.pairs_tested), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NonbondedPairKernelTiled)->Arg(128)->Arg(512);

void BM_BondKernel(benchmark::State& state) {
  const BondParam p{340.0, 1.09};
  Vec3 fa, fb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bond_energy_force({0.1, 0.2, 0.3}, {1.1, 0.9, 0.5}, p, fa, fb));
  }
}
BENCHMARK(BM_BondKernel);

void BM_AngleKernel(benchmark::State& state) {
  const AngleParam p{55.0, 1.9};
  Vec3 fa, fb, fc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(angle_energy_force({1.2, 0, 0}, {0, 0, 0},
                                                {0.4, 1.4, 0.3}, p, fa, fb, fc));
  }
}
BENCHMARK(BM_AngleKernel);

void BM_DihedralKernel(benchmark::State& state) {
  const DihedralParam p{1.4, 3, 0.5};
  Vec3 fa, fb, fc, fd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dihedral_energy_force(
        {0, 0, 0}, {1.5, 0.1, 0}, {2.0, 1.5, 0.2}, {3.4, 1.8, 1.0}, p, fa, fb, fc,
        fd));
  }
}
BENCHMARK(BM_DihedralKernel);

void BM_ExclusionCheck(benchmark::State& state) {
  // A long chain: every atom carries full 1-2/1-3 and 1-4 lists.
  Molecule mol;
  mol.box = {10000, 10, 10};
  const int t = mol.params.add_lj_type(0.1, 2.0);
  const int b = mol.params.add_bond_param(100, 1.5);
  mol.params.finalize();
  for (int i = 0; i < 1000; ++i) {
    mol.add_atom({12, 0, t}, {1.5 * i + 1, 5, 5});
    if (i > 0) mol.add_bond(i - 1, i, b);
  }
  const ExclusionTable excl = ExclusionTable::build(mol);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(excl.check(i % 1000, (i + 3) % 1000));
    ++i;
  }
}
BENCHMARK(BM_ExclusionCheck);

// ---------------------------------------------------------------------------
// Kernel-variant comparison mode
// ---------------------------------------------------------------------------

struct VariantResult {
  NonbondedKernel kernel{};
  int threads = 1;
  double seconds = 0.0;           // median per force evaluation
  double pairs_per_sec = 0.0;     // distance tests per second
  EnergyTerms energy;
  WorkCounters work;
};

int run_comparison(double box_side, int threads, const bench::CommonArgs& args) {
  const double scale = bench_scale_from_env();
  if (scale < 1.0) box_side *= std::cbrt(scale);
  const Molecule m = make_water_box({box_side, box_side, box_side}, 42);
  std::printf("water box %.0f A^3, %d atoms, cutoff %.1f A, %d reps/variant\n",
              box_side, m.atom_count(), NonbondedOptions{}.cutoff,
              args.bench.reps);

  perf::BenchRunner runner(args.bench);
  std::vector<VariantResult> results;
  for (NonbondedKernel k : {NonbondedKernel::kScalar, NonbondedKernel::kTiled,
                            NonbondedKernel::kTiledThreads}) {
    EngineOptions opts;
    opts.nonbonded.kernel = k;
    opts.nonbonded.threads = threads;
    SequentialEngine eng(m, opts);  // ctor primes forces: warm-up evaluation

    perf::BenchRecord& rec =
        runner.time(std::string("micro_forces/") + kernel_name(k),
                    "seconds_per_eval", [&eng] { eng.compute_forces(); });

    VariantResult res;
    res.kernel = k;
    res.threads = k == NonbondedKernel::kTiledThreads ? threads : 1;
    res.seconds = rec.median;
    res.energy = eng.potential();
    res.work = eng.work();
    res.pairs_per_sec = static_cast<double>(res.work.pairs_tested) / res.seconds;
    rec.param("atoms", m.atom_count())
        .param("threads", res.threads)
        .param("pairs_per_sec", res.pairs_per_sec)
        .param("ns_per_pair", 1e9 / res.pairs_per_sec)
        .label("kernel", kernel_name(k));
    results.push_back(res);
  }

  // Cross-check: identical work counts, energies within rounding.
  const VariantResult& ref = results.front();
  bool ok = true;
  for (const VariantResult& r : results) {
    if (r.work.pairs_tested != ref.work.pairs_tested ||
        r.work.pairs_computed != ref.work.pairs_computed) {
      std::fprintf(stderr, "FAIL: %s work counters diverge from scalar\n",
                   kernel_name(r.kernel));
      ok = false;
    }
    const double tol = 1e-9 * std::max(1.0, std::fabs(ref.energy.total()));
    if (std::fabs(r.energy.total() - ref.energy.total()) > tol) {
      std::fprintf(stderr, "FAIL: %s energy %.12g != scalar %.12g\n",
                   kernel_name(r.kernel), r.energy.total(), ref.energy.total());
      ok = false;
    }
  }

  std::printf("%-14s %8s %12s %14s %10s\n", "variant", "threads", "s/eval",
              "pairs/sec", "speedup");
  for (const VariantResult& r : results) {
    std::printf("%-14s %8d %12.4f %14.4g %9.2fx\n", kernel_name(r.kernel),
                r.threads, r.seconds, r.pairs_per_sec,
                ref.seconds / r.seconds);
  }

  perf::BenchReport report = perf::make_report("micro_forces");
  report.benchmarks = runner.take_records();
  const int emit_rc = bench::emit_report(args, report);
  return ok ? emit_rc : 1;
}

}  // namespace
}  // namespace scalemd

int main(int argc, char** argv) {
  scalemd::bench::CommonArgs common =
      scalemd::bench::parse_common_args(argc, argv);
  if (common.error) return 2;

  bool compare = common.json;  // a report request implies comparison mode
  double box_side = 97.0;      // ~92k atoms at liquid density: ApoA-I scale
  int threads = 4;
  std::vector<char*> passthrough{common.passthrough.front()};
  for (std::size_t i = 1; i < common.passthrough.size(); ++i) {
    char* arg = common.passthrough[i];
    const auto next_val = [&]() -> const char* {
      return i + 1 < common.passthrough.size() ? common.passthrough[++i] : nullptr;
    };
    if (std::strcmp(arg, "--compare") == 0) {
      compare = true;
    } else if (std::strcmp(arg, "--box") == 0) {
      if (const char* v = next_val()) box_side = std::atof(v);
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (const char* v = next_val()) threads = std::atoi(v);
    } else {
      passthrough.push_back(arg);
    }
  }
  if (compare) {
    return scalemd::run_comparison(box_side, threads, common);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
