// Reproduces Table 4: bR (3,762 atoms) scaling on the ASCI-Red model. The
// headline behavior is the flattening: the paper's small system stops
// scaling beyond ~64 processors (36 patches limit the decomposition).
// `--json [path]` / `--out <path>` emit a scalemd-bench report.

#include "bench_common.hpp"
#include "gen/presets.hpp"

int main(int argc, char** argv) {
  using namespace scalemd;
  const bench::CommonArgs args = bench::parse_common_args(argc, argv);
  if (args.error) return 2;

  const Molecule mol = br_like();
  const Workload wl(mol, MachineModel::asci_red());

  BenchmarkConfig cfg;
  cfg.machine = MachineModel::asci_red();
  cfg.pe_counts = bench::maybe_clip({1, 2, 4, 8, 32, 64, 128, 256});

  std::printf("Table 4: %s (%d atoms, %d patches) on %s\n\n", mol.name.c_str(),
              mol.atom_count(), wl.decomp.patch_count(), cfg.machine.name.c_str());
  const auto rows = run_scaling(wl, cfg);
  std::printf("%s\n", bench::render_with_paper(rows, bench::kPaperTable4, false).c_str());

  perf::BenchReport report = perf::make_report("table4");
  perf::append_scaling_records(report, "table4", rows);
  return bench::emit_report(args, report);
}
